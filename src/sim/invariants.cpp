#include "sim/invariants.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace idr {

const char* to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kLoop: return "loop";
    case InvariantKind::kBlackHole: return "black-hole";
    case InvariantKind::kStaleRoute: return "stale-route";
  }
  return "?";
}

std::vector<InvariantFinding> InvariantMonitor::persistent_findings() const {
  std::vector<InvariantFinding> out;
  for (const InvariantFinding& f : findings_) {
    if (f.persistent) out.push_back(f);
  }
  return out;
}

InvariantMonitor::InvariantMonitor(Network& net, InvariantConfig config,
                                   ProbeFn probe)
    : net_(net),
      config_(config),
      probe_(std::move(probe)),
      sample_prng_(config.sample_seed) {
  stats_.fault_classes.push_back(FaultClassStats{.name = "fault"});
}

std::size_t InvariantMonitor::register_fault_class(std::string name) {
  stats_.fault_classes.push_back(FaultClassStats{.name = std::move(name)});
  return stats_.fault_classes.size() - 1;
}

void InvariantMonitor::start(SimTime until_ms) {
  until_ms_ = until_ms;
  // Cold start is itself a network-wide event: every node boots with an
  // empty RIB and the first updates are still in flight (and subject to
  // the same loss/corruption as any other frame). Grant the initial
  // convergence the same grace window a fault gets, and measure it.
  note_fault();
  schedule_next();
}

void InvariantMonitor::schedule_next() {
  const SimTime next = net_.engine().now() + config_.cadence_ms;
  if (next > until_ms_) return;
  net_.engine().at(next, [this] {
    sweep();
    schedule_next();
  });
}

void InvariantMonitor::note_fault() {
  note_fault(0, -1.0);
}

void InvariantMonitor::note_fault(std::size_t fault_class, SimTime window_ms) {
  if (fault_class >= stats_.fault_classes.size()) fault_class = 0;
  const SimTime window =
      window_ms < 0.0 ? config_.reconverge_window_ms : window_ms;
  const SimTime now = net_.engine().now();
  last_fault_at_ = now;
  // Deadline form: with a constant window this is exactly the historical
  // "now - last_fault > window" rule; per-class windows just take the max
  // deadline over overlapping faults.
  settle_deadline_ = std::max(settle_deadline_, now + window);
  current_class_ = fault_class;
  ++stats_.fault_classes[fault_class].faults;
  awaiting_clean_sweep_ = true;
}

bool InvariantMonitor::default_reachable(AdId src, AdId dst) const {
  if (!net_.alive(src) || !net_.alive(dst)) return false;
  const Topology& topo = net_.topo();
  std::vector<bool> seen(topo.ad_count(), false);
  std::queue<AdId> q;
  q.push(src);
  seen[src.v] = true;
  while (!q.empty()) {
    const AdId cur = q.front();
    q.pop();
    if (cur == dst) return true;
    for (const Adjacency& adj : topo.live_neighbors(cur)) {
      // An AD inside its graceful-restart grace window still forwards
      // (frozen FIB), so ground truth keeps routing through it.
      if (seen[adj.neighbor.v] || !net_.usable(adj.neighbor)) continue;
      seen[adj.neighbor.v] = true;
      q.push(adj.neighbor);
    }
  }
  return false;
}

bool InvariantMonitor::path_is_fresh(const std::vector<AdId>& path) const {
  // A delivered path is fresh only if every hop crosses a live link and
  // every AD on it is alive (or gracefully restarting: an in-grace AD's
  // frozen FIB is sanctioned forwarding state, not a stale lie);
  // otherwise the FIB entries that produced it are stale (pointing at
  // dead infrastructure).
  const Topology& topo = net_.topo();
  for (const AdId ad : path) {
    if (!net_.usable(ad)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    if (!link || !topo.link(*link).up) return false;
  }
  return true;
}

bool InvariantMonitor::continuity_reachable(AdId src, AdId dst) const {
  // The GR promise as a reachability oracle: would this pair be
  // connected if every crashed AD still forwarded from its pre-crash
  // FIB? BFS over up links, ignoring transit aliveness entirely (but
  // endpoints must be alive -- nobody originates or terminates traffic
  // while down). Cold-restart runs are measured against the same oracle,
  // which is exactly how they show the continuity gap.
  if (!net_.alive(src) || !net_.alive(dst)) return false;
  const Topology& topo = net_.topo();
  std::vector<bool> seen(topo.ad_count(), false);
  std::queue<AdId> q;
  q.push(src);
  seen[src.v] = true;
  while (!q.empty()) {
    const AdId cur = q.front();
    q.pop();
    if (cur == dst) return true;
    for (const Adjacency& adj : topo.live_neighbors(cur)) {
      if (seen[adj.neighbor.v] || net_.is_quarantined(adj.neighbor)) continue;
      seen[adj.neighbor.v] = true;
      q.push(adj.neighbor);
    }
  }
  return false;
}

void InvariantMonitor::sweep() {
  const Topology& topo = net_.topo();
  const std::size_t n = topo.ad_count();
  ++stats_.sweeps;
  const SimTime now = net_.engine().now();
  const bool settled = last_fault_at_ < 0.0 || now > settle_deadline_;
  // Forwarding-continuity accounting is live whenever some AD is crashed
  // or riding out a grace window (down_count covers cold restarts, which
  // never enter grace).
  const bool node_churn = net_.down_count() > 0 || net_.in_grace_count() > 0;

  std::uint64_t violations = 0;
  std::uint64_t probes_this_sweep = 0;
  // Each persistent (src, dst, kind) counts once for the run: re-observing
  // the same broken pair on every sweep would make soak logs unbounded.
  auto record = [&](InvariantKind kind, AdId src, AdId dst,
                    const Probe& probe, bool persistent) {
    if (!persistent) {
      if (!config_.record_transient_findings ||
          findings_.size() >= config_.max_transient_findings) {
        return;
      }
    }
    InvariantFinding finding;
    finding.kind = kind;
    finding.persistent = persistent;
    finding.src = src;
    finding.dst = dst;
    finding.path = probe.path;
    finding.at_ms = now;
    findings_.push_back(std::move(finding));
  };
  auto persistent_once = [&](AdId src, AdId dst, InvariantKind kind,
                             const Probe& probe, std::uint64_t& counter) {
    const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 56) |
                              (static_cast<std::uint64_t>(src.v) << 28) |
                              static_cast<std::uint64_t>(dst.v);
    if (persistent_seen_.insert(key).second) {
      ++counter;
      record(kind, src, dst, probe, /*persistent=*/true);
    }
  };
  auto classify = [&](AdId src, AdId dst) {
    if (!net_.alive(src) || !net_.alive(dst)) return;  // no one to ask
    // Misbehaving endpoints are the liar's own problem: availability
    // invariants are only claimed between honest ADs.
    if (net_.misbehaving(src) || net_.misbehaving(dst)) return;
    ++stats_.probes;
    ++probes_this_sweep;
    const Probe probe = probe_(src, dst);
    const bool reachable =
        reachable_ ? reachable_(src, dst) : default_reachable(src, dst);
    if (node_churn && continuity_reachable(src, dst)) {
      ++stats_.continuity_probes;
      if (probe.outcome == ProbeOutcome::kDelivered &&
          path_is_fresh(probe.path)) {
        ++stats_.continuity_ok;
      }
    }
    switch (probe.outcome) {
      case ProbeOutcome::kLooped:
        ++violations;
        if (settled) {
          persistent_once(src, dst, InvariantKind::kLoop, probe,
                          stats_.persistent_loops);
        } else {
          ++stats_.transient_loops;
          record(InvariantKind::kLoop, src, dst, probe, false);
        }
        break;
      case ProbeOutcome::kBlackHole:
        if (reachable) {
          ++violations;
          if (settled) {
            persistent_once(src, dst, InvariantKind::kBlackHole, probe,
                            stats_.persistent_black_holes);
          } else {
            ++stats_.transient_black_holes;
            record(InvariantKind::kBlackHole, src, dst, probe, false);
          }
        }
        break;
      case ProbeOutcome::kDelivered:
        if (!path_is_fresh(probe.path)) {
          ++violations;
          if (settled) {
            persistent_once(src, dst, InvariantKind::kStaleRoute, probe,
                            stats_.persistent_stale_routes);
          } else {
            ++stats_.transient_stale_routes;
            record(InvariantKind::kStaleRoute, src, dst, probe, false);
          }
        }
        break;
    }
  };

  if (config_.sample_pairs == 0 || n * (n - 1) <= config_.sample_pairs) {
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint32_t d = 0; d < n; ++d) {
        if (s != d) classify(AdId{s}, AdId{d});
      }
    }
  } else if (!config_.dst_pool.empty() && !config_.src_pool.empty()) {
    // Stratified scale sampling: sources from the caller's slice of the
    // stub population, destinations from the beacon set.
    for (std::size_t i = 0; i < config_.sample_pairs; ++i) {
      const AdId s =
          config_.src_pool[sample_prng_.below(config_.src_pool.size())];
      const AdId d =
          config_.dst_pool[sample_prng_.below(config_.dst_pool.size())];
      if (d != s) classify(s, d);
    }
  } else if (!config_.dst_pool.empty()) {
    for (std::size_t i = 0; i < config_.sample_pairs; ++i) {
      const auto s = static_cast<std::uint32_t>(sample_prng_.below(n));
      const AdId d =
          config_.dst_pool[sample_prng_.below(config_.dst_pool.size())];
      if (d.v != s) classify(AdId{s}, d);
    }
  } else {
    for (std::size_t i = 0; i < config_.sample_pairs; ++i) {
      const auto s = static_cast<std::uint32_t>(sample_prng_.below(n));
      auto d = static_cast<std::uint32_t>(sample_prng_.below(n - 1));
      if (d >= s) ++d;
      classify(AdId{s}, AdId{d});
    }
  }

  if (awaiting_clean_sweep_ && probes_this_sweep > 0 && violations > 0) {
    // Blast radius, attributed to the class of the most recent fault.
    const double frac = static_cast<double>(violations) /
                        static_cast<double>(probes_this_sweep);
    FaultClassStats& cls = stats_.fault_classes[current_class_];
    if (frac > cls.peak_blast) cls.peak_blast = frac;
  }
  if (violations == 0 && awaiting_clean_sweep_) {
    stats_.reconverge_ms.add(now - last_fault_at_);
    stats_.fault_classes[current_class_].reconverge_ms.add(now -
                                                           last_fault_at_);
    awaiting_clean_sweep_ = false;
  }
}

// --- PolicyComplianceAuditor -----------------------------------------

PolicyComplianceAuditor::PolicyComplianceAuditor(Network& net,
                                                 AuditConfig config,
                                                 ProbeFn probe,
                                                 ReachableFn honest_reachable,
                                                 ComplianceFn compliant)
    : net_(net),
      config_(config),
      probe_(std::move(probe)),
      honest_reachable_(std::move(honest_reachable)),
      compliant_(std::move(compliant)) {}

void PolicyComplianceAuditor::choose_pairs() {
  // Fix the honest pair sample once, up front: blast radius across sweeps
  // is only comparable if every sweep asks the same question. ADs with a
  // configured misbehavior (even one not yet active) are excluded --
  // compliance is only claimed between honest parties.
  const Topology& topo = net_.topo();
  std::vector<AdId> honest;
  for (const Ad& ad : topo.ads()) {
    if (net_.misbehavior_kind(ad.id) == Misbehavior::kNone) {
      honest.push_back(ad.id);
    }
  }
  const std::size_t h = honest.size();
  if (h < 2) return;
  const std::size_t all = h * (h - 1);
  if (config_.sample_pairs == 0 || all <= config_.sample_pairs) {
    for (const AdId s : honest) {
      for (const AdId d : honest) {
        if (s != d) pairs_.emplace_back(s, d);
      }
    }
    return;
  }
  Prng prng(config_.sample_seed);
  std::unordered_set<std::uint64_t> chosen;
  while (pairs_.size() < config_.sample_pairs) {
    const AdId s = honest[prng.below(h)];
    AdId d = honest[prng.below(h)];
    if (s == d) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(s.v) << 32) | d.v;
    if (!chosen.insert(key).second) continue;
    pairs_.emplace_back(s, d);
  }
}

void PolicyComplianceAuditor::start(SimTime until_ms) {
  until_ms_ = until_ms;
  choose_pairs();
  schedule_next();
}

void PolicyComplianceAuditor::schedule_next() {
  // Sweeps only run from misbehavior onset: before it everyone is honest
  // and the InvariantMonitor already covers plain availability.
  const SimTime base = std::max(net_.engine().now(), config_.onset_ms);
  const SimTime next = base + config_.cadence_ms;
  if (next > until_ms_) return;
  net_.engine().at(next, [this] {
    sweep();
    schedule_next();
  });
}

void PolicyComplianceAuditor::record(AdId src, AdId dst,
                                     ViolationKind kind) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 56) |
      (static_cast<std::uint64_t>(src.v) << 28) |
      static_cast<std::uint64_t>(dst.v);
  if (!seen_.insert(key).second) return;
  switch (kind) {
    case ViolationKind::kHijack: ++stats_.hijacked_pairs; break;
    case ViolationKind::kLeak: ++stats_.leaked_pairs; break;
    case ViolationKind::kBlackHole: ++stats_.black_holed_pairs; break;
    case ViolationKind::kCollateral: ++stats_.collateral_pairs; break;
  }
}

PolicyComplianceAuditor::ViolationKind
PolicyComplianceAuditor::classify_delivered(
    AdId dst, const std::vector<AdId>& path) const {
  // Delivered but policy-illegal. If an active hijacker of this very dst
  // sits on the path it captured the traffic; otherwise somebody leaked.
  for (const AdId hop : path) {
    if (net_.misbehaving_as(hop, Misbehavior::kFalseOrigin) &&
        net_.misbehavior_victim(hop) == dst) {
      return ViolationKind::kHijack;
    }
  }
  return ViolationKind::kLeak;
}

PolicyComplianceAuditor::ViolationKind PolicyComplianceAuditor::classify_failed(
    AdId dst, const std::vector<AdId>& path) const {
  // An honest-reachable pair failed. A false-origin attack on this dst
  // explains it even when the hijacker is not on the walk (forged state
  // can divert or kill the route anywhere).
  for (const ByzantineSpec& spec : net_.byzantine_specs()) {
    if (spec.kind == Misbehavior::kFalseOrigin && spec.victim == dst &&
        net_.misbehaving(spec.ad)) {
      return ViolationKind::kHijack;
    }
  }
  for (const AdId hop : path) {
    switch (net_.active_misbehavior(hop)) {
      case Misbehavior::kBlackHole:
        return ViolationKind::kBlackHole;
      case Misbehavior::kRouteLeak:
      case Misbehavior::kTamper:
        return ViolationKind::kLeak;
      case Misbehavior::kFalseOrigin:
        return ViolationKind::kHijack;
      case Misbehavior::kNone:
        break;
    }
  }
  return ViolationKind::kCollateral;
}

void PolicyComplianceAuditor::sweep() {
  ++stats_.sweeps;
  std::size_t polluted = 0;
  std::size_t asked = 0;
  for (const auto& [src, dst] : pairs_) {
    if (!net_.alive(src) || !net_.alive(dst)) continue;
    ++asked;
    ++stats_.probes;
    const Probe probe = probe_(src, dst);
    if (probe.outcome == ProbeOutcome::kDelivered) {
      if (compliant_(src, dst, probe.path)) continue;
      ++polluted;
      record(src, dst, classify_delivered(dst, probe.path));
    } else {
      if (!honest_reachable_(src, dst)) continue;
      ++polluted;
      record(src, dst, classify_failed(dst, probe.path));
    }
  }
  last_sweep_pollution_ =
      asked == 0 ? 0.0
                 : static_cast<double>(polluted) / static_cast<double>(asked);
  if (last_sweep_pollution_ > stats_.peak_pollution) {
    stats_.peak_pollution = last_sweep_pollution_;
  }
  if (polluted > 0) last_polluted_at_ = net_.engine().now();
}

AuditStats PolicyComplianceAuditor::stats() const {
  AuditStats out = stats_;
  out.final_pollution = last_sweep_pollution_;
  if (out.sweeps == 0) {
    out.containment_ms = -1.0;  // never audited: no containment claim
  } else if (last_sweep_pollution_ > 0.0) {
    out.containment_ms = -1.0;  // still polluted at the end
  } else if (last_polluted_at_ < 0.0) {
    out.containment_ms = 0.0;  // never polluted at all
  } else {
    out.containment_ms =
        std::max(0.0, last_polluted_at_ - config_.onset_ms);
  }
  return out;
}

}  // namespace idr
