#include "sim/invariants.hpp"

#include <queue>
#include <utility>

namespace idr {

InvariantMonitor::InvariantMonitor(Network& net, InvariantConfig config,
                                   ProbeFn probe)
    : net_(net),
      config_(config),
      probe_(std::move(probe)),
      sample_prng_(config.sample_seed) {}

void InvariantMonitor::start(SimTime until_ms) {
  until_ms_ = until_ms;
  // Cold start is itself a network-wide event: every node boots with an
  // empty RIB and the first updates are still in flight (and subject to
  // the same loss/corruption as any other frame). Grant the initial
  // convergence the same grace window a fault gets, and measure it.
  note_fault();
  schedule_next();
}

void InvariantMonitor::schedule_next() {
  const SimTime next = net_.engine().now() + config_.cadence_ms;
  if (next > until_ms_) return;
  net_.engine().at(next, [this] {
    sweep();
    schedule_next();
  });
}

void InvariantMonitor::note_fault() {
  last_fault_at_ = net_.engine().now();
  awaiting_clean_sweep_ = true;
}

bool InvariantMonitor::default_reachable(AdId src, AdId dst) const {
  if (!net_.alive(src) || !net_.alive(dst)) return false;
  const Topology& topo = net_.topo();
  std::vector<bool> seen(topo.ad_count(), false);
  std::queue<AdId> q;
  q.push(src);
  seen[src.v] = true;
  while (!q.empty()) {
    const AdId cur = q.front();
    q.pop();
    if (cur == dst) return true;
    for (const Adjacency& adj : topo.live_neighbors(cur)) {
      if (seen[adj.neighbor.v] || !net_.alive(adj.neighbor)) continue;
      seen[adj.neighbor.v] = true;
      q.push(adj.neighbor);
    }
  }
  return false;
}

bool InvariantMonitor::path_is_fresh(const std::vector<AdId>& path) const {
  // A delivered path is fresh only if every hop crosses a live link and
  // every AD on it is alive; otherwise the FIB entries that produced it
  // are stale (pointing at dead infrastructure).
  const Topology& topo = net_.topo();
  for (const AdId ad : path) {
    if (!net_.alive(ad)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    if (!link || !topo.link(*link).up) return false;
  }
  return true;
}

void InvariantMonitor::sweep() {
  const Topology& topo = net_.topo();
  const std::size_t n = topo.ad_count();
  ++stats_.sweeps;
  const SimTime now = net_.engine().now();
  const bool settled = last_fault_at_ < 0.0 ||
                       now - last_fault_at_ > config_.reconverge_window_ms;

  std::uint64_t violations = 0;
  auto classify = [&](AdId src, AdId dst) {
    if (!net_.alive(src) || !net_.alive(dst)) return;  // no one to ask
    ++stats_.probes;
    const Probe probe = probe_(src, dst);
    const bool reachable =
        reachable_ ? reachable_(src, dst) : default_reachable(src, dst);
    switch (probe.outcome) {
      case ProbeOutcome::kLooped:
        ++violations;
        if (settled) {
          ++stats_.persistent_loops;
        } else {
          ++stats_.transient_loops;
        }
        break;
      case ProbeOutcome::kBlackHole:
        if (reachable) {
          ++violations;
          if (settled) {
            ++stats_.persistent_black_holes;
          } else {
            ++stats_.transient_black_holes;
          }
        }
        break;
      case ProbeOutcome::kDelivered:
        if (!path_is_fresh(probe.path)) {
          ++violations;
          if (settled) {
            ++stats_.persistent_stale_routes;
          } else {
            ++stats_.transient_stale_routes;
          }
        }
        break;
    }
  };

  if (config_.sample_pairs == 0 || n * (n - 1) <= config_.sample_pairs) {
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint32_t d = 0; d < n; ++d) {
        if (s != d) classify(AdId{s}, AdId{d});
      }
    }
  } else {
    for (std::size_t i = 0; i < config_.sample_pairs; ++i) {
      const auto s = static_cast<std::uint32_t>(sample_prng_.below(n));
      auto d = static_cast<std::uint32_t>(sample_prng_.below(n - 1));
      if (d >= s) ++d;
      classify(AdId{s}, AdId{d});
    }
  }

  if (violations == 0 && awaiting_clean_sweep_) {
    stats_.reconverge_ms.add(now - last_fault_at_);
    awaiting_clean_sweep_ = false;
  }
}

}  // namespace idr
