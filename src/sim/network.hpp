// The simulated inter-AD network: binds a Topology to per-AD protocol
// nodes and delivers encoded messages between adjacent ADs with link
// delay. Messages sent over a down link are dropped (counted). Link state
// changes are delivered to both endpoint nodes as local events -- exactly
// the information a real border gateway gets from its interface.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "proto/common/counters.hpp"
#include "sim/engine.hpp"
#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {

class Network;

// A protocol entity running inside one AD (the paper's Route Server /
// policy gateway complex collapsed to one node per AD, matching the
// AD-level abstraction of §4.1).
class Node {
 public:
  virtual ~Node() = default;

  // The AD this node runs in (valid after attach).
  [[nodiscard]] AdId id() const noexcept { return self_; }

  // Called once after every AD's node is attached.
  virtual void start() {}

  // An encoded PDU arrived from adjacent AD `from`.
  virtual void on_message(AdId from, std::span<const std::uint8_t> bytes) = 0;

  // The link to adjacent AD `neighbor` changed state.
  virtual void on_link_change(AdId neighbor, bool up) {
    (void)neighbor;
    (void)up;
  }

 protected:
  friend class Network;
  Network* net_ = nullptr;
  AdId self_;
};

class Network {
 public:
  Network(Engine& engine, Topology& topo);

  // Takes ownership; one node per AD, attached before start_all().
  void attach(AdId ad, std::unique_ptr<Node> node);
  void start_all();

  // Send encoded bytes from `from` to adjacent `to`. Returns false (and
  // counts a drop) if there is no live link. Delivery is delayed by the
  // link's delay plus per-message transmission time.
  bool send(AdId from, AdId to, std::vector<std::uint8_t> bytes);

  // Change a link's state and notify both endpoint nodes immediately.
  void set_link_state(LinkId link, bool up);

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] Topology& topo() noexcept { return topo_; }
  [[nodiscard]] const Topology& topo() const noexcept { return topo_; }
  [[nodiscard]] Node* node(AdId ad);

  [[nodiscard]] const Counters& counters(AdId ad) const;
  [[nodiscard]] const Counters& total() const noexcept { return total_; }
  // Simulated time of the most recent protocol message delivery; the
  // convergence benchmarks read this after draining the event queue.
  [[nodiscard]] SimTime last_delivery_time() const noexcept {
    return last_delivery_;
  }
  void reset_counters();

  // Bytes per kilobit-millisecond: serialization delay model. Messages
  // are delayed by link delay + size * per_byte_delay_ms.
  void set_per_byte_delay(double ms_per_byte) noexcept {
    per_byte_delay_ms_ = ms_per_byte;
  }

  // Random in-flight loss: each delivery independently dropped with this
  // probability (deterministic in the seed). Models the unreliable
  // datagram service the paper assumes ("sequencing and reliability are
  // left to the transport layer").
  void set_loss(double rate, std::uint64_t seed) noexcept;
  [[nodiscard]] std::uint64_t losses() const noexcept { return losses_; }

 private:
  Engine& engine_;
  Topology& topo_;
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by AdId
  std::vector<Counters> counters_;            // indexed by AdId
  Counters total_;
  SimTime last_delivery_ = 0.0;
  double per_byte_delay_ms_ = 0.0;
  double loss_rate_ = 0.0;
  Prng loss_prng_{0};
  std::uint64_t losses_ = 0;
};

}  // namespace idr
