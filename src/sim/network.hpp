// The simulated inter-AD network: binds a Topology to per-AD protocol
// nodes and delivers encoded messages between adjacent ADs with link
// delay. Messages sent over a down link are dropped (counted). Link state
// changes are delivered to both endpoint nodes as local events -- exactly
// the information a real border gateway gets from its interface.
//
// Beyond the happy path, the network models the adversarial conditions of
// a real internet (paper §2.2: protocols must stay correct while the
// inter-AD topology changes underneath them):
//   * node crash + restart -- a crashed AD's node is destroyed (all soft
//     state lost) and re-created cold via a per-protocol factory;
//   * adversarial delivery faults -- per-frame probabilistic loss,
//     corruption (random bit flips), duplication, and reordering (extra
//     random delay), all deterministic in the seed and counted per AD;
//   * keepalive/hold-timer neighbor liveness in the Node substrate, so a
//     protocol detects a crashed or unreachable neighbor from silence
//     instead of the instantaneous on_link_change oracle (which can be
//     disabled entirely with set_link_notifications(false)).
//
// Sharded execution (Engine::enable_sharding, see shard.hpp) imposes an
// ownership discipline this class follows throughout: an event scheduled
// for AD `x` runs on `x`'s shard and may only touch `x`-indexed state.
// Frames are keyed by the sender's stream but execute on the receiver's
// shard, so all delivery-time accounting (delivered/dropped/duplicated/
// reordered/corrupted) is receiver-attributed, per-frame fault decisions
// are drawn at send time from the sender's own PRNG stream, and the few
// genuinely global aggregates (losses, last delivery time) are kept
// per-shard and folded on read. Global mutations -- crash/restart, link
// state, quarantine -- are driver actions and must run as control-stream
// events (Engine::at), which a sharded engine serializes between windows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "proto/common/counters.hpp"
#include "sim/engine.hpp"
#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {

class Network;

// Immutable frame payload, shared between the sender's copy, duplicated
// deliveries, and every receiver of a broadcast -- one allocation per
// encoded PDU instead of one per (neighbor, copy).
using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

[[nodiscard]] inline Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

// --- Byzantine / misconfigured-AD fault model ------------------------
// Orthogonal to the delivery faults above: a misbehaving AD runs the
// protocol but lies in it (or silently eats traffic). The taxonomy maps
// the dominant real-world inter-domain failure modes onto the paper's
// four design points:
//   * kFalseOrigin -- hijack: claims to originate reachability for a
//     victim AD (metric-0 DV entry, path=[self] route, forged LSA) and
//     black-holes the victim's traffic it attracts;
//   * kRouteLeak -- re-advertises learned routes in violation of its own
//     transit policy (IDRP/LS term violation, ECMA down-then-up rule);
//   * kTamper -- mutates path attributes in transit or at origin (IDRP
//     path shortening, DV metric zeroing, LS adjacency stripping on
//     re-flood);
//   * kBlackHole -- advertises honestly but drops all transit traffic.
enum class Misbehavior : std::uint8_t {
  kNone = 0,
  kFalseOrigin = 1,
  kRouteLeak = 2,
  kTamper = 3,
  kBlackHole = 4,
};

[[nodiscard]] const char* to_string(Misbehavior m) noexcept;

// One misbehaving AD in a seeded schedule. Before start_ms the AD is
// honest; from start_ms on it misbehaves until quarantined (defended
// runs) or the end of the run.
struct ByzantineSpec {
  AdId ad;
  Misbehavior kind = Misbehavior::kNone;
  AdId victim;  // false-origin hijack target; invalid otherwise
  SimTime start_ms = 0.0;
};

// Adversarial delivery faults applied per frame, decided at send time
// from one seeded stream (so a run is reproducible from the seed alone).
struct FaultConfig {
  double loss_rate = 0.0;       // frame silently lost in flight
  double corrupt_rate = 0.0;    // random bit flips applied to the frame
  double duplicate_rate = 0.0;  // frame delivered twice
  double reorder_rate = 0.0;    // frame delayed by extra random latency
  double reorder_extra_ms = 5.0;  // max extra delay for a reordered frame
  // Fraction of corrupted frames that evade the modeled datagram checksum
  // and reach the receiving protocol's decoder; the rest are detected and
  // discarded at the interface. 1.0 = no checksum (every mangled frame is
  // the decoder's problem), 0.0 = a perfect checksum.
  double corrupt_deliver_fraction = 1.0;

  [[nodiscard]] bool any() const noexcept {
    return loss_rate > 0.0 || corrupt_rate > 0.0 || duplicate_rate > 0.0 ||
           reorder_rate > 0.0;
  }
};

// --- control-plane message classes + overload protection -------------
// Every frame carries a class; with overload protection enabled
// (OverloadConfig::queue_limit > 0) the receiving AD runs a bounded
// ingress queue serviced in strict priority order -- keepalives before
// withdrawals before updates before refreshes -- so under a restart
// storm session liveness and bad news survive while deferrable refresh
// traffic is shed. Tail-drop is deterministic: a full queue evicts the
// newest frame of the lowest-priority occupied class below the arrival
// (or the arrival itself when nothing less important is queued).
enum class MsgClass : std::uint8_t {
  kKeepalive = 0,   // session liveness: never starved
  kWithdrawal = 1,  // bad news: fast loop / black-hole repair
  kUpdate = 2,      // ordinary reachability updates
  kRefresh = 3,     // periodic full-state refresh: most deferrable
};
inline constexpr std::size_t kMsgClassCount = 4;
[[nodiscard]] const char* to_string(MsgClass c) noexcept;

struct OverloadConfig {
  // Max frames queued per receiving AD across all classes. 0 disables
  // overload protection entirely: frames dispatch at arrival, the
  // pre-existing (byte-identical) behavior.
  std::size_t queue_limit = 0;
  std::size_t service_batch = 16;  // frames dispatched per service event
  SimTime service_interval_ms = 1.0;

  [[nodiscard]] bool enabled() const noexcept { return queue_limit > 0; }
};

struct OverloadStats {
  std::uint64_t enqueued = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped[kMsgClassCount] = {0, 0, 0, 0};  // by victim class
  std::size_t peak_depth = 0;       // high-water mark of any one AD's queue
  std::uint64_t cleared_on_crash = 0;

  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kMsgClassCount; ++c) sum += dropped[c];
    return sum;
  }
};

// --- graceful restart ------------------------------------------------
// With GR enabled a crash no longer hard-drops the AD: its pre-crash
// node survives as a frozen data-plane zombie for one grace window
// (forwarding_node() keeps resolving to it, so traffic keeps flowing
// over the stale FIB), while neighbors that learn of the crash retain
// the dead AD's routes as stale instead of withdrawing. If the control
// plane restarts within grace, the deadline event is a hitless handover
// to the resynced node; if not, it is the flush -- the zombie is
// destroyed and the AD finally looks hard-down to everyone.
struct GrConfig {
  bool enabled = false;
  SimTime grace_ms = 2000.0;
};

// Keepalive/hold-timer neighbor liveness (interval 0 disables). A node
// with keepalive enabled sends a one-byte keepalive to each neighbor
// every interval; any frame heard from a neighbor refreshes its hold
// timer. Silence for miss_threshold intervals declares the neighbor dead
// (delivered to the protocol as on_link_change(neighbor, false)); dead
// neighbors are re-probed with exponential backoff, and the first frame
// heard from one revives it (on_link_change(neighbor, true)).
struct KeepaliveConfig {
  SimTime interval_ms = 0.0;  // 0 disables keepalive entirely
  std::uint32_t miss_threshold = 3;
  double backoff_factor = 2.0;
  SimTime max_probe_interval_ms = 0.0;  // 0 => 8 * interval_ms
  // Deterministic per-(AD, slot) stretch applied to the backed-off probe
  // spacing, as a fraction of the spacing (0.25 => up to +25%). Without
  // it every neighbor of a flapping AD probes in lockstep and the
  // re-establishment attempts arrive as one synchronized retry storm.
  // 0 keeps probe schedules byte-identical to the unjittered behavior.
  double probe_jitter = 0.0;
};

// A protocol entity running inside one AD (the paper's Route Server /
// policy gateway complex collapsed to one node per AD, matching the
// AD-level abstraction of §4.1).
class Node {
 public:
  virtual ~Node() = default;

  // The AD this node runs in (valid after attach).
  [[nodiscard]] AdId id() const noexcept { return self_; }

  // Called once after every AD's node is attached.
  virtual void start() {}

  // An encoded PDU arrived from adjacent AD `from`.
  virtual void on_message(AdId from, std::span<const std::uint8_t> bytes) = 0;

  // The link to adjacent AD `neighbor` changed state. Fired by the
  // network oracle (unless notifications are disabled) and by the node's
  // own keepalive machinery when a neighbor's hold timer expires/revives.
  virtual void on_link_change(AdId neighbor, bool up) {
    (void)neighbor;
    (void)up;
  }

  // Entry point the Network delivers through (non-virtual): refreshes the
  // sender's liveness, consumes keepalive frames, dispatches the rest to
  // on_message. `slot` is the sender's position in this node's adjacency
  // list (Topology::adjacency_slot), so liveness lookup is an array index.
  // `heard_at` is the frame's interface arrival time (< 0 = "now"): with
  // overload protection a frame can be serviced long after it arrived,
  // and liveness must be refreshed from arrival, not service, or a
  // queued stale frame would vouch for a neighbor that has since died.
  void deliver(AdId from, std::uint32_t slot,
               std::span<const std::uint8_t> bytes, SimTime heard_at = -1.0);

  // Turn on keepalive/hold-timer liveness for this node (callable any
  // time after attach). Chosen well clear of every protocol's small
  // message-type space so a keepalive never parses as a protocol PDU.
  static constexpr std::uint8_t kKeepaliveType = 0xF0;
  void enable_keepalive(const KeepaliveConfig& config);

  // False when keepalive has declared this neighbor dead, and -- with the
  // network's crash-notification oracle enabled -- when the neighbor's
  // node is crashed and out of grace (during a grace window a gracefully
  // restarting neighbor still counts as alive: that is the retention).
  [[nodiscard]] bool neighbor_alive(AdId neighbor) const;

 protected:
  friend class Network;

  // Schedule `fn` to run after delay_ms unless this node has been crashed
  // (or crashed and replaced) by then. Protocol timers MUST use this (or
  // re-resolve the node themselves): a plain engine callback capturing
  // `this` dangles when the node is crashed out from under it.
  void schedule_guarded(SimTime delay_ms, std::function<void()> fn);

  Network* net_ = nullptr;
  AdId self_;

 private:
  struct NeighborLiveness {
    SimTime last_heard = 0.0;
    bool alive = true;
    SimTime probe_interval_ms = 0.0;  // current (backed-off) probe spacing
    SimTime next_probe_at = 0.0;
    // When the hold timer last declared this neighbor dead; revival
    // requires a frame heard at or after this instant.
    SimTime declared_dead_at = -1.0;
  };

  void keepalive_tick();
  void schedule_keepalive_tick(SimTime delay_ms);
  void note_heard(AdId from, std::uint32_t slot, SimTime heard_at);

  KeepaliveConfig keepalive_;
  bool keepalive_enabled_ = false;
  // Indexed by adjacency slot (position in topo().neighbors(self_)); a
  // dense array because liveness refresh runs on every delivered frame.
  std::vector<NeighborLiveness> liveness_;
};

class Network {
 public:
  using NodeFactory = std::function<std::unique_ptr<Node>(AdId)>;

  Network(Engine& engine, Topology& topo);

  // Takes ownership; one node per AD, attached before start_all().
  void attach(AdId ad, std::unique_ptr<Node> node);
  void start_all();

  // Send encoded bytes from `from` to adjacent `to`. Returns false (and
  // counts a drop) if there is no live link. Delivery is delayed by the
  // link's delay plus per-message transmission time. `cls` only matters
  // with overload protection enabled: it picks the receiving AD's
  // ingress-queue priority.
  bool send(AdId from, AdId to, std::vector<std::uint8_t> bytes,
            MsgClass cls = MsgClass::kUpdate) {
    return send(from, to, make_payload(std::move(bytes)), cls);
  }
  // Shared-payload variant: broadcasts reuse one allocation across all
  // receivers (corruption faults copy-on-write the affected frame only).
  bool send(AdId from, AdId to, Payload payload,
            MsgClass cls = MsgClass::kUpdate);

  // --- overload protection -------------------------------------------
  // Bounded class-prioritized ingress queues on every AD (see MsgClass).
  // Default-off; enabling changes delivery timing, so differential
  // transcripts are only stable with it off. Sequential backend only
  // (checked): the global OverloadStats aggregate is written from
  // delivery events, which a sharded engine runs concurrently.
  void set_overload(const OverloadConfig& config);
  [[nodiscard]] const OverloadConfig& overload() const noexcept {
    return overload_;
  }
  [[nodiscard]] const OverloadStats& overload_stats() const noexcept {
    return overload_stats_;
  }

  // Change a link's state and notify both endpoint nodes immediately
  // (unless notifications are disabled).
  void set_link_state(LinkId link, bool up);

  // Disable/enable the instantaneous link-state oracle. With
  // notifications off, protocols only learn about failures from their own
  // keepalive hold timers (or from data-plane errors).
  void set_link_notifications(bool enabled) noexcept {
    link_notifications_ = enabled;
  }
  [[nodiscard]] bool link_notifications() const noexcept {
    return link_notifications_;
  }

  // --- node crash / restart ------------------------------------------
  // Needed before restart(): how to build a cold node for an AD.
  void set_node_factory(NodeFactory factory) {
    node_factory_ = std::move(factory);
  }
  // Destroy the AD's node: all soft state is lost, in-flight frames to it
  // are dropped (counted), its pending timers become no-ops.
  void crash(AdId ad);
  // Re-create the AD's node cold via the factory and start() it. If a
  // default keepalive config was installed, the new node inherits it.
  void restart(AdId ad);
  [[nodiscard]] bool alive(AdId ad) const;
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  // ADs currently crashed (node destroyed, not yet restarted).
  [[nodiscard]] std::size_t down_count() const noexcept { return down_count_; }

  // Fire on_link_change(ad, up) at alive neighbors when `ad` crashes or
  // restarts -- the failure-detection oracle for node churn, mirroring
  // set_link_notifications for links. Default off (byte-identical).
  void set_crash_notifications(bool enabled) noexcept {
    crash_notifications_ = enabled;
  }
  [[nodiscard]] bool crash_notifications() const noexcept {
    return crash_notifications_;
  }

  // --- graceful restart ----------------------------------------------
  void set_graceful_restart(const GrConfig& config) { gr_ = config; }
  [[nodiscard]] const GrConfig& gr() const noexcept { return gr_; }
  // True while the AD's frozen pre-crash state is serving its grace
  // window (stays true through a restart until the handover deadline).
  [[nodiscard]] bool in_grace(AdId ad) const;
  [[nodiscard]] std::size_t in_grace_count() const noexcept {
    return in_grace_count_;
  }
  // Alive, or dead-but-in-grace: the set of ADs that can still forward.
  [[nodiscard]] bool usable(AdId ad) const { return alive(ad) || in_grace(ad); }
  // The node whose FIB answers forwarding queries for `ad`: the frozen
  // zombie during a grace window (even after the control plane has
  // restarted -- handover waits for the deadline), else the live node,
  // else null. Identical to node() when GR is off.
  [[nodiscard]] Node* forwarding_node(AdId ad);
  // Grace windows that expired with the AD still down (stale flush)
  // resp. ended with a restarted control plane (hitless handover).
  [[nodiscard]] std::uint64_t gr_flushes() const noexcept {
    return gr_flushes_;
  }
  [[nodiscard]] std::uint64_t gr_recoveries() const noexcept {
    return gr_recoveries_;
  }

  // Install keepalive on every attached node, and on every node restarted
  // from now on.
  void set_keepalive(const KeepaliveConfig& config);

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }
  [[nodiscard]] Topology& topo() noexcept { return topo_; }
  [[nodiscard]] const Topology& topo() const noexcept { return topo_; }
  [[nodiscard]] Node* node(AdId ad);

  [[nodiscard]] const Counters& counters(AdId ad) const;
  // Network-wide totals, folded from the per-AD counters on read (so no
  // event ever writes a global aggregate; see the sharding note on top).
  [[nodiscard]] Counters total() const;
  // Simulated time of the most recent protocol message delivery; the
  // convergence benchmarks read this after draining the event queue.
  [[nodiscard]] SimTime last_delivery_time() const noexcept;
  void reset_counters();

  // A protocol parsed and rejected a malformed PDU instead of aborting.
  void note_malformed(AdId ad);

  // Bytes per kilobit-millisecond: serialization delay model. Messages
  // are delayed by link delay + size * per_byte_delay_ms.
  void set_per_byte_delay(double ms_per_byte) noexcept {
    per_byte_delay_ms_ = ms_per_byte;
  }

  // Full adversarial fault model (loss + corruption + duplication +
  // reordering), deterministic in the seed.
  // Every per-frame decision is drawn at send time from the sender's own
  // PRNG stream (seeded from `seed` x sender AD), so the fault schedule
  // is a pure function of the seed -- independent of event interleaving,
  // backend, and shard count.
  void set_faults(const FaultConfig& faults, std::uint64_t seed);
  [[nodiscard]] const FaultConfig& faults() const noexcept { return faults_; }

  // Random in-flight loss only: each delivery independently dropped with
  // this probability (deterministic in the seed). Models the unreliable
  // datagram service the paper assumes ("sequencing and reliability are
  // left to the transport layer").
  void set_loss(double rate, std::uint64_t seed);
  [[nodiscard]] std::uint64_t losses() const noexcept;

  // Generation counter for an AD's node slot; bumped on crash so stale
  // timers scheduled by a destroyed node can detect they are orphaned.
  [[nodiscard]] std::uint64_t generation(AdId ad) const;

  // Invoked on every topology-churn event, tagged with its class: kLink
  // for a link up/down transition, kNode for a crash, restart, or
  // quarantine. The invariant monitor hooks this to time reconvergence
  // (with a per-class window) and separate transient from persistent
  // violations.
  enum class ChurnKind : std::uint8_t { kLink = 0, kNode = 1 };
  void set_churn_observer(std::function<void(ChurnKind)> fn) {
    churn_observer_ = std::move(fn);
  }

  // --- Byzantine / misconfigured ADs ---------------------------------
  // Install one misbehavior spec (at most one per AD; later wins).
  void set_misbehavior(const ByzantineSpec& spec);
  [[nodiscard]] const std::vector<ByzantineSpec>& byzantine_specs()
      const noexcept {
    return byz_specs_;
  }
  // The AD's configured kind, regardless of onset time (kNone if honest).
  [[nodiscard]] Misbehavior misbehavior_kind(AdId ad) const;
  [[nodiscard]] AdId misbehavior_victim(AdId ad) const;
  // The AD's kind iff its onset time has passed; kNone before onset.
  [[nodiscard]] Misbehavior active_misbehavior(AdId ad) const;
  [[nodiscard]] bool misbehaving(AdId ad) const {
    return active_misbehavior(ad) != Misbehavior::kNone;
  }
  [[nodiscard]] bool misbehaving_as(AdId ad, Misbehavior kind) const {
    return active_misbehavior(ad) == kind;
  }
  // Would `ad` drop a transit/terminal data packet destined for `dst`
  // right now? True for an active black hole (any dst) and for an active
  // false-origin hijacker (its victim's traffic). The forwarding-walk
  // probes consult this; control-plane frames are unaffected.
  [[nodiscard]] bool drops_traffic(AdId ad, AdId dst) const;

  // Data-plane conformance containment: isolate a detected misbehaving
  // AD. Its frames are dropped at every receiving interface, neighbors
  // see it as dead (keepalive revival is suppressed), and alive
  // neighbors get an immediate on_link_change(ad, false).
  void quarantine(AdId ad);
  [[nodiscard]] bool is_quarantined(AdId ad) const;

  // A protocol's Byzantine defense rejected (or clamped away) an
  // advertisement at `ad`.
  void note_defense_rejection(AdId ad);

 private:
  friend class Node;

  // Per-frame fault decisions, all made at send time on the sender's
  // shard; the delivery event just acts on them receiver-side.
  struct FrameFaults {
    bool duplicate = false;  // this frame is the injected extra copy
    bool reordered = false;
    bool corrupted = false;
    bool checksum_caught = false;  // corrupted + the modeled checksum saw it
    bool lost = false;             // silently lost in flight
  };

  void deliver_frame(AdId from, AdId to, LinkId link, Payload payload,
                     double delay_ms, FrameFaults fx, MsgClass cls);
  void enqueue_ingress(AdId from, AdId to, LinkId link, Payload payload,
                       MsgClass cls);
  void service_ingress(AdId to);
  void end_grace(AdId ad);
  void reseed_fault_prngs();
  // Sender-stream PRNG; null when no fault/loss rate is configured.
  [[nodiscard]] Prng* fault_prng(AdId from) noexcept {
    return fault_prng_.empty() ? nullptr : &fault_prng_[from.v];
  }
  // Delivery bookkeeping owned by the executing shard.
  void note_delivery();

  struct QueuedFrame {
    AdId from;
    LinkId link;
    Payload payload;
    SimTime arrival_ms = 0.0;
  };
  struct IngressQueue {
    std::deque<QueuedFrame> cls[kMsgClassCount];
    std::size_t depth = 0;
    bool service_scheduled = false;
  };

  Engine& engine_;
  Topology& topo_;
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by AdId
  std::vector<std::uint64_t> generations_;    // indexed by AdId
  std::vector<Counters> counters_;            // indexed by AdId
  std::vector<SimTime> last_delivery_;        // indexed by shard
  double per_byte_delay_ms_ = 0.0;
  FaultConfig faults_;
  std::uint64_t fault_seed_ = 0;
  std::vector<Prng> fault_prng_;           // indexed by sender AdId
  std::vector<std::uint64_t> losses_;      // indexed by shard
  std::uint64_t crashes_ = 0;
  std::size_t down_count_ = 0;
  bool link_notifications_ = true;
  bool crash_notifications_ = false;
  OverloadConfig overload_;
  OverloadStats overload_stats_;
  std::vector<IngressQueue> ingress_;  // indexed by AdId (receiver)
  GrConfig gr_;
  // GR zombies: the frozen pre-crash node, non-null iff in grace.
  std::vector<std::unique_ptr<Node>> frozen_;  // indexed by AdId
  std::vector<SimTime> grace_deadline_;        // indexed by AdId
  std::size_t in_grace_count_ = 0;
  std::uint64_t gr_flushes_ = 0;
  std::uint64_t gr_recoveries_ = 0;
  NodeFactory node_factory_;
  KeepaliveConfig default_keepalive_;
  bool keepalive_default_set_ = false;
  std::function<void(ChurnKind)> churn_observer_;
  std::vector<ByzantineSpec> byz_specs_;
  std::vector<ByzantineSpec> byz_by_ad_;  // indexed by AdId; kNone = honest
  std::vector<std::uint8_t> quarantined_;  // indexed by AdId
};

}  // namespace idr
