// Window barrier for the sharded parallel engine: the coordinator opens
// one synchronization window per conservative time window, every worker
// runs its shards' events for that window, and the coordinator waits for
// all of them before draining mailboxes and serializing control events.
//
// All shared window state (the bound, the shard queues touched by exactly
// one side at a time) is published through this barrier's mutex, so the
// protocol needs no atomics beyond it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace idr::detail {

class WindowBarrier {
 public:
  explicit WindowBarrier(std::size_t workers) : workers_(workers) {}

  // Coordinator: publish a new window and wake every worker.
  void open();
  // Coordinator: block until every worker called arrive_done().
  void wait_done();
  // Coordinator: wake workers with the shutdown flag set.
  void stop();

  // Worker: block until a window newer than `last_epoch` opens (updates
  // `last_epoch`) or shutdown is requested. False means shut down.
  bool wait_open(std::uint64_t& last_epoch);
  // Worker: this worker finished the current window.
  void arrive_done();

 private:
  std::mutex mu_;
  std::condition_variable open_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  std::size_t workers_;
  bool stop_ = false;
};

}  // namespace idr::detail
