#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace idr {

// --- Node: delivery + keepalive liveness -----------------------------

namespace {
// One process-wide keepalive frame, shared by every node's every probe.
const Payload& keepalive_payload() {
  static const Payload p = std::make_shared<const std::vector<std::uint8_t>>(
      1, Node::kKeepaliveType);
  return p;
}
}  // namespace

void Node::deliver(AdId from, std::uint32_t slot,
                   std::span<const std::uint8_t> bytes) {
  // Any frame heard from a neighbor -- keepalive, protocol PDU, even a
  // mangled one -- proves the neighbor is up and refreshes its hold timer.
  if (keepalive_enabled_) note_heard(from, slot);
  if (bytes.size() == 1 && bytes[0] == kKeepaliveType) return;
  on_message(from, bytes);
}

void Node::enable_keepalive(const KeepaliveConfig& config) {
  keepalive_ = config;
  if (keepalive_.max_probe_interval_ms <= 0.0) {
    keepalive_.max_probe_interval_ms = 8.0 * keepalive_.interval_ms;
  }
  if (keepalive_.backoff_factor < 1.0) keepalive_.backoff_factor = 1.0;
  keepalive_enabled_ = keepalive_.interval_ms > 0.0;
  if (!keepalive_enabled_) return;

  NeighborLiveness nl;
  nl.last_heard = net_->engine().now();  // grace: fresh node presumes liveness
  nl.probe_interval_ms = keepalive_.interval_ms;
  liveness_.assign(net_->topo().neighbors(self_).size(), nl);
  schedule_keepalive_tick(keepalive_.interval_ms);
}

bool Node::neighbor_alive(AdId neighbor) const {
  // A quarantined neighbor is administratively dead regardless of what
  // the hold timer last concluded (its frames are blocked, so the timer
  // will agree shortly anyway).
  if (net_ && net_->is_quarantined(neighbor)) return false;
  if (!keepalive_enabled_) return true;
  const auto link = net_->topo().find_link(self_, neighbor);
  if (!link) return true;
  const std::uint32_t slot = net_->topo().adjacency_slot(*link, self_);
  return slot >= liveness_.size() || liveness_[slot].alive;
}

void Node::keepalive_tick() {
  const SimTime now = net_->engine().now();
  const SimTime hold_ms =
      keepalive_.interval_ms * static_cast<double>(keepalive_.miss_threshold);
  const std::span<const Adjacency> nbrs = net_->topo().neighbors(self_);
  for (std::size_t slot = 0; slot < nbrs.size(); ++slot) {
    const Adjacency& adj = nbrs[slot];
    NeighborLiveness& nl = liveness_[slot];
    if (nl.alive) {
      net_->send(self_, adj.neighbor, keepalive_payload());
      if (now - nl.last_heard > hold_ms) {
        // Hold timer expired: the neighbor crashed or the link silently
        // died. Declare it down and fall back to backed-off probing.
        nl.alive = false;
        nl.probe_interval_ms = keepalive_.interval_ms;
        nl.next_probe_at = now + nl.probe_interval_ms;
        on_link_change(adj.neighbor, false);
      }
    } else if (now >= nl.next_probe_at) {
      net_->send(self_, adj.neighbor, keepalive_payload());
      nl.probe_interval_ms = std::min(
          nl.probe_interval_ms * keepalive_.backoff_factor,
          static_cast<double>(keepalive_.max_probe_interval_ms));
      nl.next_probe_at = now + nl.probe_interval_ms;
    }
  }
  schedule_keepalive_tick(keepalive_.interval_ms);
}

void Node::schedule_guarded(SimTime delay_ms, std::function<void()> fn) {
  // The timer must survive this node being crashed out from under it:
  // capture (network, AD, generation) instead of `this`. The generation
  // is bumped on crash, so a matching generation proves the very same
  // node object is still attached and `fn`'s captures are valid.
  Network* net = net_;
  const AdId self = self_;
  const std::uint64_t gen = net->generation(self);
  net->engine().after(delay_ms, [net, self, gen, fn = std::move(fn)] {
    if (net->generation(self) != gen || !net->alive(self)) return;
    fn();
  });
}

void Node::schedule_keepalive_tick(SimTime delay_ms) {
  schedule_guarded(delay_ms, [this] { keepalive_tick(); });
}

void Node::note_heard(AdId from, std::uint32_t slot) {
  if (net_ && net_->is_quarantined(from)) return;  // no revival while isolated
  if (slot >= liveness_.size()) return;
  NeighborLiveness& nl = liveness_[slot];
  nl.last_heard = net_->engine().now();
  if (!nl.alive) {
    nl.alive = true;
    nl.probe_interval_ms = keepalive_.interval_ms;
    on_link_change(from, true);
  }
}

// --- Network ---------------------------------------------------------

const char* to_string(Misbehavior m) noexcept {
  switch (m) {
    case Misbehavior::kNone: return "none";
    case Misbehavior::kFalseOrigin: return "false-origin";
    case Misbehavior::kRouteLeak: return "route-leak";
    case Misbehavior::kTamper: return "tamper";
    case Misbehavior::kBlackHole: return "black-hole";
  }
  return "?";
}

Network::Network(Engine& engine, Topology& topo)
    : engine_(engine), topo_(topo) {
  nodes_.resize(topo.ad_count());
  generations_.resize(topo.ad_count(), 0);
  counters_.resize(topo.ad_count());
  byz_by_ad_.resize(topo.ad_count());
  quarantined_.resize(topo.ad_count(), 0);
}

// --- Byzantine / misconfigured ADs -----------------------------------

void Network::set_misbehavior(const ByzantineSpec& spec) {
  IDR_CHECK(spec.ad.v < byz_by_ad_.size());
  byz_specs_.push_back(spec);
  byz_by_ad_[spec.ad.v] = spec;
}

Misbehavior Network::misbehavior_kind(AdId ad) const {
  IDR_CHECK(ad.v < byz_by_ad_.size());
  return byz_by_ad_[ad.v].kind;
}

AdId Network::misbehavior_victim(AdId ad) const {
  IDR_CHECK(ad.v < byz_by_ad_.size());
  return byz_by_ad_[ad.v].victim;
}

Misbehavior Network::active_misbehavior(AdId ad) const {
  IDR_CHECK(ad.v < byz_by_ad_.size());
  const ByzantineSpec& spec = byz_by_ad_[ad.v];
  if (spec.kind == Misbehavior::kNone) return Misbehavior::kNone;
  if (engine_.now() < spec.start_ms) return Misbehavior::kNone;
  return spec.kind;
}

bool Network::drops_traffic(AdId ad, AdId dst) const {
  if (ad == dst) return false;  // terminal delivery at self always works
  const Misbehavior kind = active_misbehavior(ad);
  if (kind == Misbehavior::kBlackHole) return true;
  if (kind == Misbehavior::kFalseOrigin) {
    return misbehavior_victim(ad) == dst;
  }
  return false;
}

void Network::quarantine(AdId ad) {
  IDR_CHECK(ad.v < quarantined_.size());
  if (quarantined_[ad.v]) return;
  quarantined_[ad.v] = 1;
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
  // Tell alive neighbors immediately -- the modeled conformance monitor
  // plays the role of an operator yanking the session.
  for (const Adjacency& adj : topo_.neighbors(ad)) {
    if (Node* n = nodes_[adj.neighbor.v].get()) n->on_link_change(ad, false);
  }
}

bool Network::is_quarantined(AdId ad) const {
  IDR_CHECK(ad.v < quarantined_.size());
  return quarantined_[ad.v] != 0;
}

void Network::note_defense_rejection(AdId ad) {
  IDR_CHECK(ad.v < counters_.size());
  counters_[ad.v].defense_rejections += 1;
  total_.defense_rejections += 1;
}

void Network::attach(AdId ad, std::unique_ptr<Node> node) {
  IDR_CHECK(ad.v < nodes_.size());
  IDR_CHECK_MSG(!nodes_[ad.v], "node already attached to this AD");
  node->net_ = this;
  node->self_ = ad;
  nodes_[ad.v] = std::move(node);
}

void Network::start_all() {
  for (auto& node : nodes_) {
    IDR_CHECK_MSG(node != nullptr, "every AD needs a node before start");
  }
  for (auto& node : nodes_) node->start();
}

Node* Network::node(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  return nodes_[ad.v].get();
}

bool Network::alive(AdId ad) const {
  IDR_CHECK(ad.v < nodes_.size());
  return nodes_[ad.v] != nullptr;
}

std::uint64_t Network::generation(AdId ad) const {
  IDR_CHECK(ad.v < generations_.size());
  return generations_[ad.v];
}

void Network::crash(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  if (!nodes_[ad.v]) return;  // already down
  nodes_[ad.v].reset();       // all soft state gone
  ++generations_[ad.v];       // orphan its pending timers
  ++crashes_;
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
}

void Network::restart(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  if (nodes_[ad.v]) return;  // already up
  IDR_CHECK_MSG(static_cast<bool>(node_factory_),
                "Network::restart requires set_node_factory");
  std::unique_ptr<Node> node = node_factory_(ad);
  IDR_CHECK_MSG(node != nullptr, "node factory returned null");
  node->net_ = this;
  node->self_ = ad;
  nodes_[ad.v] = std::move(node);
  if (keepalive_default_set_) {
    nodes_[ad.v]->enable_keepalive(default_keepalive_);
  }
  nodes_[ad.v]->start();  // cold start: the protocol rebuilds from scratch
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
}

void Network::set_keepalive(const KeepaliveConfig& config) {
  default_keepalive_ = config;
  keepalive_default_set_ = true;
  for (auto& node : nodes_) {
    if (node) node->enable_keepalive(config);
  }
}

const Counters& Network::counters(AdId ad) const {
  IDR_CHECK(ad.v < counters_.size());
  return counters_[ad.v];
}

void Network::reset_counters() {
  for (Counters& c : counters_) c = Counters{};
  total_ = Counters{};
}

void Network::note_malformed(AdId ad) {
  IDR_CHECK(ad.v < counters_.size());
  counters_[ad.v].malformed_dropped += 1;
  total_.malformed_dropped += 1;
}

bool Network::send(AdId from, AdId to, Payload bytes) {
  Counters& c = counters_[from.v];
  c.msgs_sent += 1;
  c.bytes_sent += bytes->size();
  total_.msgs_sent += 1;
  total_.bytes_sent += bytes->size();

  const auto link = topo_.find_link(from, to);
  if (!link || !topo_.link(*link).up) {
    c.msgs_dropped += 1;
    total_.msgs_dropped += 1;
    return false;
  }
  const double base_delay =
      topo_.link(*link).delay_ms +
      per_byte_delay_ms_ * static_cast<double>(bytes->size());

  // Adversarial per-frame faults, decided here from one seeded stream so
  // the whole schedule is a pure function of the seed.
  int copies = 1;
  if (faults_.duplicate_rate > 0.0 &&
      fault_prng_.bernoulli(faults_.duplicate_rate)) {
    copies = 2;
    counters_[to.v].msgs_duplicated += 1;
    total_.msgs_duplicated += 1;
  }
  for (int i = 0; i < copies; ++i) {
    Payload payload = (i + 1 < copies) ? bytes : std::move(bytes);
    double delay = base_delay;
    if (faults_.reorder_rate > 0.0 &&
        fault_prng_.bernoulli(faults_.reorder_rate)) {
      delay += fault_prng_.uniform_real(0.0, faults_.reorder_extra_ms);
      counters_[to.v].msgs_reordered += 1;
      total_.msgs_reordered += 1;
    }
    bool corrupted = false;
    if (faults_.corrupt_rate > 0.0 && !payload->empty() &&
        fault_prng_.bernoulli(faults_.corrupt_rate)) {
      // Copy-on-write: the mangled frame must not contaminate other
      // receivers of a shared broadcast payload.
      corrupted = true;
      auto mangled =
          std::make_shared<std::vector<std::uint8_t>>(*payload);
      const std::uint64_t flips = 1 + fault_prng_.below(3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::size_t at =
            static_cast<std::size_t>(fault_prng_.below(mangled->size()));
        (*mangled)[at] ^=
            static_cast<std::uint8_t>(1u << fault_prng_.below(8));
      }
      payload = std::move(mangled);
      counters_[to.v].msgs_corrupted += 1;
      total_.msgs_corrupted += 1;
    }
    deliver_frame(from, to, *link, std::move(payload), delay, corrupted);
  }
  return true;
}

void Network::deliver_frame(AdId from, AdId to, LinkId link, Payload bytes,
                            double delay_ms, bool corrupted) {
  engine_.after(delay_ms, [this, from, to, link, corrupted,
                           payload = std::move(bytes)]() {
    // Link may have gone down while the message was in flight.
    if (!topo_.link(link).up) {
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    if (faults_.loss_rate > 0.0 && fault_prng_.bernoulli(faults_.loss_rate)) {
      ++losses_;
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    if (corrupted && faults_.corrupt_deliver_fraction < 1.0 &&
        !fault_prng_.bernoulli(faults_.corrupt_deliver_fraction)) {
      // The modeled datagram checksum caught the mangled frame at the
      // receiving interface; it never reaches the protocol.
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    if (quarantined_[from.v]) {
      // The sender has been quarantined by the conformance monitor:
      // every receiving interface discards its frames (keepalives
      // included, so it cannot revive its own liveness entry).
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    Node* n = nodes_[to.v].get();
    if (!n) {
      // Receiver crashed while the frame was in flight.
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    counters_[to.v].msgs_delivered += 1;
    total_.msgs_delivered += 1;
    last_delivery_ = engine_.now();
    n->deliver(from, topo_.adjacency_slot(link, to), *payload);
  });
}

void Network::set_faults(const FaultConfig& faults,
                         std::uint64_t seed) noexcept {
  faults_ = faults;
  fault_prng_.reseed(seed);
}

void Network::set_loss(double rate, std::uint64_t seed) noexcept {
  faults_.loss_rate = rate;
  fault_prng_.reseed(seed);
}

void Network::set_link_state(LinkId link, bool up) {
  const Link& l = topo_.link(link);
  if (l.up == up) return;
  topo_.set_link_up(link, up);
  if (churn_observer_) churn_observer_(ChurnKind::kLink);
  if (!link_notifications_) return;
  if (nodes_[l.a.v]) nodes_[l.a.v]->on_link_change(l.b, up);
  if (nodes_[l.b.v]) nodes_[l.b.v]->on_link_change(l.a, up);
}

}  // namespace idr
