#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace idr {

// --- Node: delivery + keepalive liveness -----------------------------

namespace {
// One process-wide keepalive frame, shared by every node's every probe.
const Payload& keepalive_payload() {
  static const Payload p = std::make_shared<const std::vector<std::uint8_t>>(
      1, Node::kKeepaliveType);
  return p;
}
}  // namespace

void Node::deliver(AdId from, std::uint32_t slot,
                   std::span<const std::uint8_t> bytes, SimTime heard_at) {
  // Any frame heard from a neighbor -- keepalive, protocol PDU, even a
  // mangled one -- proves the neighbor was up when the frame arrived and
  // refreshes its hold timer from that arrival time (which trails "now"
  // only when the frame sat in an overload queue).
  if (keepalive_enabled_) {
    note_heard(from, slot, heard_at < 0.0 ? net_->engine().now() : heard_at);
  }
  if (bytes.size() == 1 && bytes[0] == kKeepaliveType) return;
  on_message(from, bytes);
}

void Node::enable_keepalive(const KeepaliveConfig& config) {
  keepalive_ = config;
  if (keepalive_.max_probe_interval_ms <= 0.0) {
    keepalive_.max_probe_interval_ms = 8.0 * keepalive_.interval_ms;
  }
  if (keepalive_.backoff_factor < 1.0) keepalive_.backoff_factor = 1.0;
  keepalive_enabled_ = keepalive_.interval_ms > 0.0;
  if (!keepalive_enabled_) return;

  NeighborLiveness nl;
  nl.last_heard = net_->engine().now();  // grace: fresh node presumes liveness
  nl.probe_interval_ms = keepalive_.interval_ms;
  liveness_.assign(net_->topo().neighbors(self_).size(), nl);
  schedule_keepalive_tick(keepalive_.interval_ms);
}

bool Node::neighbor_alive(AdId neighbor) const {
  // A quarantined neighbor is administratively dead regardless of what
  // the hold timer last concluded (its frames are blocked, so the timer
  // will agree shortly anyway).
  if (net_ && net_->is_quarantined(neighbor)) return false;
  // With the crash oracle on, a crashed neighbor is dead the moment it
  // crashes -- unless it is gracefully restarting, in which case the
  // whole point is that neighbors keep treating it as up for the grace
  // window (LS adjacencies retained, DV routes kept stale-but-usable).
  if (net_ && net_->crash_notifications() && !net_->alive(neighbor) &&
      !net_->in_grace(neighbor)) {
    return false;
  }
  if (!keepalive_enabled_) return true;
  const auto link = net_->topo().find_link(self_, neighbor);
  if (!link) return true;
  const std::uint32_t slot = net_->topo().adjacency_slot(*link, self_);
  return slot >= liveness_.size() || liveness_[slot].alive;
}

void Node::keepalive_tick() {
  const SimTime now = net_->engine().now();
  const SimTime hold_ms =
      keepalive_.interval_ms * static_cast<double>(keepalive_.miss_threshold);
  const std::span<const Adjacency> nbrs = net_->topo().neighbors(self_);
  for (std::size_t slot = 0; slot < nbrs.size(); ++slot) {
    const Adjacency& adj = nbrs[slot];
    NeighborLiveness& nl = liveness_[slot];
    if (nl.alive) {
      net_->send(self_, adj.neighbor, keepalive_payload(),
                 MsgClass::kKeepalive);
      if (now - nl.last_heard > hold_ms) {
        // Hold timer expired: the neighbor crashed or the link silently
        // died. Declare it down and fall back to backed-off probing.
        nl.alive = false;
        nl.probe_interval_ms = keepalive_.interval_ms;
        nl.next_probe_at = now + nl.probe_interval_ms;
        nl.declared_dead_at = now;
        on_link_change(adj.neighbor, false);
      }
    } else if (now >= nl.next_probe_at) {
      net_->send(self_, adj.neighbor, keepalive_payload(),
                 MsgClass::kKeepalive);
      nl.probe_interval_ms = std::min(
          nl.probe_interval_ms * keepalive_.backoff_factor,
          static_cast<double>(keepalive_.max_probe_interval_ms));
      SimTime spacing = nl.probe_interval_ms;
      if (keepalive_.probe_jitter > 0.0) {
        // Deterministic per-(AD, slot) phase: spreads the re-establishment
        // probes of a dead AD's many neighbors so its recovery is not met
        // by one synchronized retry storm.
        std::uint64_t h = (static_cast<std::uint64_t>(self_.v) << 20) ^
                          (static_cast<std::uint64_t>(slot) + 1);
        h *= 0x9E3779B97F4A7C15ull;
        const double frac =
            static_cast<double>((h >> 40) & 0xFFFFFFu) / 16777216.0;
        spacing *= 1.0 + keepalive_.probe_jitter * frac;
      }
      nl.next_probe_at = now + spacing;
    }
  }
  schedule_keepalive_tick(keepalive_.interval_ms);
}

void Node::schedule_guarded(SimTime delay_ms, std::function<void()> fn) {
  // The timer must survive this node being crashed out from under it:
  // capture (network, AD, generation) instead of `this`. The generation
  // is bumped on crash, so a matching generation proves the very same
  // node object is still attached and `fn`'s captures are valid.
  //
  // Scheduled on the node's own stream with the node as owner: on a
  // sharded engine the timer fires on this node's shard (never on a
  // thread that doesn't own its state), and its position in the total
  // event order is independent of the shard count.
  Network* net = net_;
  const AdId self = self_;
  const std::uint64_t gen = net->generation(self);
  net->engine().after_node(
      delay_ms, self.v + 1, self.v, [net, self, gen, fn = std::move(fn)] {
        if (net->generation(self) != gen || !net->alive(self)) return;
        fn();
      });
}

void Node::schedule_keepalive_tick(SimTime delay_ms) {
  schedule_guarded(delay_ms, [this] { keepalive_tick(); });
}

void Node::note_heard(AdId from, std::uint32_t slot, SimTime heard_at) {
  if (net_ && net_->is_quarantined(from)) return;  // no revival while isolated
  if (slot >= liveness_.size()) return;
  NeighborLiveness& nl = liveness_[slot];
  // Monotone refresh: a frame serviced late out of an overload queue
  // carries its (older) arrival time and must never rewind the hold
  // timer past evidence already accounted for.
  nl.last_heard = std::max(nl.last_heard, heard_at);
  if (!nl.alive) {
    // Revival needs evidence from at or after the death declaration. A
    // queued frame that arrived before the hold timer expired is exactly
    // the stale timestamp that must not vouch for a neighbor which has
    // since revived and re-expired (or never came back at all).
    if (heard_at < nl.declared_dead_at) return;
    nl.alive = true;
    nl.probe_interval_ms = keepalive_.interval_ms;
    on_link_change(from, true);
  }
}

// --- Network ---------------------------------------------------------

const char* to_string(MsgClass c) noexcept {
  switch (c) {
    case MsgClass::kKeepalive: return "keepalive";
    case MsgClass::kWithdrawal: return "withdrawal";
    case MsgClass::kUpdate: return "update";
    case MsgClass::kRefresh: return "refresh";
  }
  return "?";
}

const char* to_string(Misbehavior m) noexcept {
  switch (m) {
    case Misbehavior::kNone: return "none";
    case Misbehavior::kFalseOrigin: return "false-origin";
    case Misbehavior::kRouteLeak: return "route-leak";
    case Misbehavior::kTamper: return "tamper";
    case Misbehavior::kBlackHole: return "black-hole";
  }
  return "?";
}

Network::Network(Engine& engine, Topology& topo)
    : engine_(engine), topo_(topo) {
  nodes_.resize(topo.ad_count());
  generations_.resize(topo.ad_count(), 0);
  counters_.resize(topo.ad_count());
  byz_by_ad_.resize(topo.ad_count());
  quarantined_.resize(topo.ad_count(), 0);
  frozen_.resize(topo.ad_count());
  grace_deadline_.resize(topo.ad_count(), 0.0);
  // Per-shard delivery bookkeeping: size it now, which is why sharding
  // must be enabled on the engine before the Network is built.
  last_delivery_.assign(engine.shard_count(), 0.0);
  losses_.assign(engine.shard_count(), 0);
}

// --- Byzantine / misconfigured ADs -----------------------------------

void Network::set_misbehavior(const ByzantineSpec& spec) {
  IDR_CHECK(spec.ad.v < byz_by_ad_.size());
  byz_specs_.push_back(spec);
  byz_by_ad_[spec.ad.v] = spec;
}

Misbehavior Network::misbehavior_kind(AdId ad) const {
  IDR_CHECK(ad.v < byz_by_ad_.size());
  return byz_by_ad_[ad.v].kind;
}

AdId Network::misbehavior_victim(AdId ad) const {
  IDR_CHECK(ad.v < byz_by_ad_.size());
  return byz_by_ad_[ad.v].victim;
}

Misbehavior Network::active_misbehavior(AdId ad) const {
  IDR_CHECK(ad.v < byz_by_ad_.size());
  const ByzantineSpec& spec = byz_by_ad_[ad.v];
  if (spec.kind == Misbehavior::kNone) return Misbehavior::kNone;
  if (engine_.now() < spec.start_ms) return Misbehavior::kNone;
  return spec.kind;
}

bool Network::drops_traffic(AdId ad, AdId dst) const {
  if (ad == dst) return false;  // terminal delivery at self always works
  const Misbehavior kind = active_misbehavior(ad);
  if (kind == Misbehavior::kBlackHole) return true;
  if (kind == Misbehavior::kFalseOrigin) {
    return misbehavior_victim(ad) == dst;
  }
  return false;
}

void Network::quarantine(AdId ad) {
  IDR_CHECK(ad.v < quarantined_.size());
  if (quarantined_[ad.v]) return;
  quarantined_[ad.v] = 1;
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
  // Tell alive neighbors immediately -- the modeled conformance monitor
  // plays the role of an operator yanking the session.
  for (const Adjacency& adj : topo_.neighbors(ad)) {
    if (Node* n = nodes_[adj.neighbor.v].get()) n->on_link_change(ad, false);
  }
}

bool Network::is_quarantined(AdId ad) const {
  IDR_CHECK(ad.v < quarantined_.size());
  return quarantined_[ad.v] != 0;
}

void Network::note_defense_rejection(AdId ad) {
  IDR_CHECK(ad.v < counters_.size());
  counters_[ad.v].defense_rejections += 1;
}

void Network::attach(AdId ad, std::unique_ptr<Node> node) {
  IDR_CHECK(ad.v < nodes_.size());
  IDR_CHECK_MSG(!nodes_[ad.v], "node already attached to this AD");
  node->net_ = this;
  node->self_ = ad;
  nodes_[ad.v] = std::move(node);
}

void Network::start_all() {
  for (auto& node : nodes_) {
    IDR_CHECK_MSG(node != nullptr, "every AD needs a node before start");
  }
  for (auto& node : nodes_) node->start();
}

Node* Network::node(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  return nodes_[ad.v].get();
}

bool Network::alive(AdId ad) const {
  IDR_CHECK(ad.v < nodes_.size());
  return nodes_[ad.v] != nullptr;
}

std::uint64_t Network::generation(AdId ad) const {
  IDR_CHECK(ad.v < generations_.size());
  return generations_[ad.v];
}

void Network::crash(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  if (!nodes_[ad.v]) return;  // already down
  if (gr_.enabled) {
    // Graceful restart: the control plane dies but the forwarding state
    // survives as a frozen zombie for one grace window. On a re-crash
    // within grace the original (fully converged) zombie is kept -- the
    // re-crashed node's half-resynced FIB would be a worse snapshot --
    // and the deadline is pushed out.
    if (!frozen_[ad.v]) {
      frozen_[ad.v] = std::move(nodes_[ad.v]);
      ++in_grace_count_;
    }
    const SimTime deadline = engine_.now() + gr_.grace_ms;
    grace_deadline_[ad.v] = deadline;
    engine_.after(gr_.grace_ms, [this, ad, deadline] {
      // A later crash extends the window; only the newest deadline acts.
      if (!frozen_[ad.v] || grace_deadline_[ad.v] != deadline) return;
      end_grace(ad);
    });
  }
  nodes_[ad.v].reset();  // all soft state gone
  ++generations_[ad.v];  // orphan its pending timers
  ++crashes_;
  ++down_count_;
  if (overload_.enabled() && ad.v < ingress_.size()) {
    // A crash loses the ingress queue along with everything else.
    IngressQueue& iq = ingress_[ad.v];
    for (auto& q : iq.cls) {
      overload_stats_.cleared_on_crash += q.size();
      q.clear();
    }
    iq.depth = 0;
  }
  if (crash_notifications_) {
    for (const Adjacency& adj : topo_.neighbors(ad)) {
      if (topo_.link(adj.link).up && nodes_[adj.neighbor.v]) {
        nodes_[adj.neighbor.v]->on_link_change(ad, false);
      }
    }
  }
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
}

void Network::end_grace(AdId ad) {
  // Grace over: drop the frozen forwarding state. If the control plane
  // restarted in time this is the hitless handover to its resynced FIB;
  // if not, it is the stale flush -- the AD now looks hard-down to
  // everyone (neighbor_alive stops vouching for it, probes stop
  // resolving its zombie), which is itself a forwarding change worth a
  // churn event.
  frozen_[ad.v].reset();
  --in_grace_count_;
  if (nodes_[ad.v]) {
    ++gr_recoveries_;
  } else {
    ++gr_flushes_;
  }
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
}

bool Network::in_grace(AdId ad) const {
  IDR_CHECK(ad.v < frozen_.size());
  return frozen_[ad.v] != nullptr;
}

Node* Network::forwarding_node(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  if (frozen_[ad.v]) return frozen_[ad.v].get();
  return nodes_[ad.v].get();
}

void Network::restart(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  if (nodes_[ad.v]) return;  // already up
  IDR_CHECK_MSG(static_cast<bool>(node_factory_),
                "Network::restart requires set_node_factory");
  std::unique_ptr<Node> node = node_factory_(ad);
  IDR_CHECK_MSG(node != nullptr, "node factory returned null");
  node->net_ = this;
  node->self_ = ad;
  nodes_[ad.v] = std::move(node);
  if (keepalive_default_set_) {
    nodes_[ad.v]->enable_keepalive(default_keepalive_);
  }
  nodes_[ad.v]->start();  // cold start: the protocol rebuilds from scratch
  if (down_count_ > 0) --down_count_;
  if (crash_notifications_) {
    // The recovery signal: neighbors resync the restarted control plane
    // (targeted refresh / LSDB sync), which under GR is the incremental
    // path back to a fresh FIB before the grace deadline hands over.
    for (const Adjacency& adj : topo_.neighbors(ad)) {
      if (topo_.link(adj.link).up && nodes_[adj.neighbor.v]) {
        nodes_[adj.neighbor.v]->on_link_change(ad, true);
      }
    }
  }
  if (churn_observer_) churn_observer_(ChurnKind::kNode);
}

void Network::set_keepalive(const KeepaliveConfig& config) {
  default_keepalive_ = config;
  keepalive_default_set_ = true;
  for (auto& node : nodes_) {
    if (node) node->enable_keepalive(config);
  }
}

const Counters& Network::counters(AdId ad) const {
  IDR_CHECK(ad.v < counters_.size());
  return counters_[ad.v];
}

Counters Network::total() const {
  Counters t;
  for (const Counters& c : counters_) t += c;
  return t;
}

SimTime Network::last_delivery_time() const noexcept {
  SimTime t = 0.0;
  for (const SimTime s : last_delivery_) t = std::max(t, s);
  return t;
}

std::uint64_t Network::losses() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t l : losses_) n += l;
  return n;
}

void Network::note_delivery() {
  const std::uint32_t shard = engine_.current_shard();
  IDR_CHECK(shard < last_delivery_.size());
  last_delivery_[shard] = engine_.now();
}

void Network::reset_counters() {
  for (Counters& c : counters_) c = Counters{};
}

void Network::note_malformed(AdId ad) {
  IDR_CHECK(ad.v < counters_.size());
  counters_[ad.v].malformed_dropped += 1;
}

bool Network::send(AdId from, AdId to, Payload bytes, MsgClass cls) {
  Counters& c = counters_[from.v];
  c.msgs_sent += 1;
  c.bytes_sent += bytes->size();

  const auto link = topo_.find_link(from, to);
  if (!link || !topo_.link(*link).up) {
    c.msgs_dropped += 1;
    return false;
  }
  const double base_delay =
      topo_.link(*link).delay_ms +
      per_byte_delay_ms_ * static_cast<double>(bytes->size());

  // Adversarial per-frame faults, all decided here at send time from the
  // sender's own seeded stream: the fault schedule is a pure function of
  // (seed, sender) -- independent of event interleaving, backend, and
  // shard count -- and the delivery event below only acts on the flags,
  // so it touches nothing but receiver-shard state.
  Prng* prng = fault_prng(from);
  int copies = 1;
  if (faults_.duplicate_rate > 0.0 &&
      prng->bernoulli(faults_.duplicate_rate)) {
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    Payload payload = (i + 1 < copies) ? bytes : std::move(bytes);
    FrameFaults fx;
    fx.duplicate = i > 0;
    double delay = base_delay;
    if (faults_.reorder_rate > 0.0 &&
        prng->bernoulli(faults_.reorder_rate)) {
      delay += prng->uniform_real(0.0, faults_.reorder_extra_ms);
      fx.reordered = true;
    }
    if (faults_.corrupt_rate > 0.0 && !payload->empty() &&
        prng->bernoulli(faults_.corrupt_rate)) {
      // Copy-on-write: the mangled frame must not contaminate other
      // receivers of a shared broadcast payload.
      fx.corrupted = true;
      auto mangled =
          std::make_shared<std::vector<std::uint8_t>>(*payload);
      const std::uint64_t flips = 1 + prng->below(3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::size_t at =
            static_cast<std::size_t>(prng->below(mangled->size()));
        (*mangled)[at] ^=
            static_cast<std::uint8_t>(1u << prng->below(8));
      }
      payload = std::move(mangled);
      if (faults_.corrupt_deliver_fraction < 1.0 &&
          !prng->bernoulli(faults_.corrupt_deliver_fraction)) {
        fx.checksum_caught = true;
      }
    }
    if (faults_.loss_rate > 0.0 && prng->bernoulli(faults_.loss_rate)) {
      fx.lost = true;
    }
    deliver_frame(from, to, *link, std::move(payload), delay, fx, cls);
  }
  return true;
}

void Network::deliver_frame(AdId from, AdId to, LinkId link, Payload bytes,
                            double delay_ms, FrameFaults fx, MsgClass cls) {
  // Keyed by the sender's stream (its position in the deterministic total
  // order), owned by the receiver (the shard it executes on).
  engine_.after_node(delay_ms, from.v + 1, to.v,
                     [this, from, to, link, fx, cls,
                      payload = std::move(bytes)]() {
    // Receiver-side accounting only: this event runs on `to`'s shard.
    // The fault flags count at the receiving interface whether or not
    // the frame survives to the protocol.
    Counters& c = counters_[to.v];
    if (fx.duplicate) c.msgs_duplicated += 1;
    if (fx.reordered) c.msgs_reordered += 1;
    if (fx.corrupted) c.msgs_corrupted += 1;
    // Link may have gone down while the message was in flight.
    if (!topo_.link(link).up) {
      c.msgs_dropped += 1;
      return;
    }
    if (fx.lost) {
      const std::uint32_t shard = engine_.current_shard();
      IDR_CHECK(shard < losses_.size());
      ++losses_[shard];
      c.msgs_dropped += 1;
      return;
    }
    if (fx.checksum_caught) {
      // The modeled datagram checksum caught the mangled frame at the
      // receiving interface; it never reaches the protocol.
      c.msgs_dropped += 1;
      return;
    }
    if (quarantined_[from.v]) {
      // The sender has been quarantined by the conformance monitor:
      // every receiving interface discards its frames (keepalives
      // included, so it cannot revive its own liveness entry).
      c.msgs_dropped += 1;
      return;
    }
    Node* n = nodes_[to.v].get();
    if (!n) {
      // Receiver crashed while the frame was in flight.
      c.msgs_dropped += 1;
      return;
    }
    if (overload_.enabled()) {
      enqueue_ingress(from, to, link, payload, cls);
      return;
    }
    c.msgs_delivered += 1;
    note_delivery();
    n->deliver(from, topo_.adjacency_slot(link, to), *payload);
  });
}

void Network::set_overload(const OverloadConfig& config) {
  IDR_CHECK_MSG(!(config.enabled() && engine_.sharded()),
                "overload protection is sequential-only: the shared "
                "OverloadStats aggregate is written from delivery events");
  overload_ = config;
  if (overload_.service_batch == 0) overload_.service_batch = 1;
  if (overload_.service_interval_ms <= 0.0) overload_.service_interval_ms = 1.0;
  if (overload_.enabled() && ingress_.size() < nodes_.size()) {
    ingress_.resize(nodes_.size());
  }
}

void Network::enqueue_ingress(AdId from, AdId to, LinkId link, Payload payload,
                              MsgClass cls) {
  IngressQueue& iq = ingress_[to.v];
  const std::size_t c = static_cast<std::size_t>(cls);
  if (iq.depth >= overload_.queue_limit) {
    // Bounded queue full: shed deterministically from the low-priority
    // tail. If anything strictly less important than the arrival is
    // queued, evict the newest such frame to make room; otherwise the
    // arrival itself is the least important thing in sight and is shed.
    std::size_t victim = kMsgClassCount;
    for (std::size_t v = kMsgClassCount; v-- > c + 1;) {
      if (!iq.cls[v].empty()) {
        victim = v;
        break;
      }
    }
    if (victim == kMsgClassCount) {
      ++overload_stats_.dropped[c];
      counters_[to.v].msgs_dropped += 1;
      return;
    }
    counters_[to.v].msgs_dropped += 1;
    iq.cls[victim].pop_back();
    --iq.depth;
    ++overload_stats_.dropped[victim];
  }
  iq.cls[c].push_back(QueuedFrame{from, link, std::move(payload),
                                  engine_.now()});
  ++iq.depth;
  ++overload_stats_.enqueued;
  if (iq.depth > overload_stats_.peak_depth) {
    overload_stats_.peak_depth = iq.depth;
  }
  if (!iq.service_scheduled) {
    iq.service_scheduled = true;
    engine_.after_node(overload_.service_interval_ms, to.v + 1, to.v,
                       [this, to] { service_ingress(to); });
  }
}

void Network::service_ingress(AdId to) {
  IngressQueue& iq = ingress_[to.v];
  iq.service_scheduled = false;
  std::size_t budget = overload_.service_batch;
  for (std::size_t c = 0; c < kMsgClassCount && budget > 0; ++c) {
    while (budget > 0 && !iq.cls[c].empty()) {
      QueuedFrame f = std::move(iq.cls[c].front());
      iq.cls[c].pop_front();
      --iq.depth;
      --budget;
      ++overload_stats_.served;
      Node* n = nodes_[to.v].get();
      if (!n) {
        // Crash and service collided at one timestamp; the queue is
        // normally cleared by crash() before this can run.
        ++overload_stats_.cleared_on_crash;
        continue;
      }
      if (quarantined_[f.from.v]) {
        // Sender was quarantined while the frame sat queued.
        counters_[to.v].msgs_dropped += 1;
        continue;
      }
      counters_[to.v].msgs_delivered += 1;
      note_delivery();
      n->deliver(f.from, topo_.adjacency_slot(f.link, to), *f.payload,
                 f.arrival_ms);
    }
  }
  if (iq.depth > 0 && !iq.service_scheduled) {
    iq.service_scheduled = true;
    engine_.after_node(overload_.service_interval_ms, to.v + 1, to.v,
                       [this, to] { service_ingress(to); });
  }
}

void Network::set_faults(const FaultConfig& faults, std::uint64_t seed) {
  faults_ = faults;
  fault_seed_ = seed;
  reseed_fault_prngs();
}

void Network::set_loss(double rate, std::uint64_t seed) {
  faults_.loss_rate = rate;
  fault_seed_ = seed;
  reseed_fault_prngs();
}

void Network::reseed_fault_prngs() {
  fault_prng_.clear();
  if (!faults_.any()) return;
  fault_prng_.reserve(nodes_.size());
  for (std::size_t ad = 0; ad < nodes_.size(); ++ad) {
    // One independent stream per sender AD, derived from the run seed.
    std::uint64_t sm =
        fault_seed_ + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ad) + 1);
    fault_prng_.emplace_back(splitmix64(sm));
  }
}

void Network::set_link_state(LinkId link, bool up) {
  const Link& l = topo_.link(link);
  if (l.up == up) return;
  topo_.set_link_up(link, up);
  if (churn_observer_) churn_observer_(ChurnKind::kLink);
  if (!link_notifications_) return;
  if (nodes_[l.a.v]) nodes_[l.a.v]->on_link_change(l.b, up);
  if (nodes_[l.b.v]) nodes_[l.b.v]->on_link_change(l.a, up);
}

}  // namespace idr
