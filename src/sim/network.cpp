#include "sim/network.hpp"

#include <utility>

#include "util/check.hpp"

namespace idr {

Network::Network(Engine& engine, Topology& topo)
    : engine_(engine), topo_(topo) {
  nodes_.resize(topo.ad_count());
  counters_.resize(topo.ad_count());
}

void Network::attach(AdId ad, std::unique_ptr<Node> node) {
  IDR_CHECK(ad.v < nodes_.size());
  IDR_CHECK_MSG(!nodes_[ad.v], "node already attached to this AD");
  node->net_ = this;
  node->self_ = ad;
  nodes_[ad.v] = std::move(node);
}

void Network::start_all() {
  for (auto& node : nodes_) {
    IDR_CHECK_MSG(node != nullptr, "every AD needs a node before start");
  }
  for (auto& node : nodes_) node->start();
}

Node* Network::node(AdId ad) {
  IDR_CHECK(ad.v < nodes_.size());
  return nodes_[ad.v].get();
}

const Counters& Network::counters(AdId ad) const {
  IDR_CHECK(ad.v < counters_.size());
  return counters_[ad.v];
}

void Network::reset_counters() {
  for (Counters& c : counters_) c = Counters{};
  total_ = Counters{};
}

bool Network::send(AdId from, AdId to, std::vector<std::uint8_t> bytes) {
  Counters& c = counters_[from.v];
  c.msgs_sent += 1;
  c.bytes_sent += bytes.size();
  total_.msgs_sent += 1;
  total_.bytes_sent += bytes.size();

  const auto link = topo_.find_link(from, to);
  if (!link || !topo_.link(*link).up) {
    c.msgs_dropped += 1;
    total_.msgs_dropped += 1;
    return false;
  }
  const double delay =
      topo_.link(*link).delay_ms +
      per_byte_delay_ms_ * static_cast<double>(bytes.size());
  engine_.after(delay, [this, from, to, link = *link,
                        payload = std::move(bytes)]() {
    // Link may have gone down while the message was in flight.
    if (!topo_.link(link).up) {
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    if (loss_rate_ > 0.0 && loss_prng_.bernoulli(loss_rate_)) {
      ++losses_;
      counters_[from.v].msgs_dropped += 1;
      total_.msgs_dropped += 1;
      return;
    }
    counters_[to.v].msgs_delivered += 1;
    total_.msgs_delivered += 1;
    last_delivery_ = engine_.now();
    nodes_[to.v]->on_message(from, payload);
  });
  return true;
}

void Network::set_loss(double rate, std::uint64_t seed) noexcept {
  loss_rate_ = rate;
  loss_prng_.reseed(seed);
}

void Network::set_link_state(LinkId link, bool up) {
  const Link& l = topo_.link(link);
  if (l.up == up) return;
  topo_.set_link_up(link, up);
  if (nodes_[l.a.v]) nodes_[l.a.v]->on_link_change(l.b, up);
  if (nodes_[l.b.v]) nodes_[l.b.v]->on_link_change(l.a, up);
}

}  // namespace idr
