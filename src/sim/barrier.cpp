#include "sim/barrier.hpp"

namespace idr::detail {

void WindowBarrier::open() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
    done_ = 0;
  }
  open_cv_.notify_all();
}

void WindowBarrier::wait_done() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return done_ == workers_; });
}

void WindowBarrier::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  open_cv_.notify_all();
}

bool WindowBarrier::wait_open(std::uint64_t& last_epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  open_cv_.wait(lock,
                [this, &last_epoch] { return stop_ || epoch_ != last_epoch; });
  if (stop_) return false;
  last_epoch = epoch_;
  return true;
}

void WindowBarrier::arrive_done() {
  std::size_t done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = ++done_;
  }
  if (done == workers_) done_cv_.notify_all();
}

}  // namespace idr::detail
