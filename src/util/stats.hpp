// Small statistics helpers used by benchmarks and tests: running summary
// statistics and exact percentiles over collected samples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace idr {

// Accumulates samples; computes summary statistics on demand.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_count(double x, std::size_t n) {
    samples_.insert(samples_.end(), n, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  // Sample standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double stddev() const noexcept;
  // Exact percentile by nearest-rank on a sorted copy; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  // One-line human-readable rendering, e.g. "n=10 mean=3.2 p50=3 max=9".
  [[nodiscard]] std::string brief() const;

 private:
  std::vector<double> samples_;
};

// Fixed-width linear histogram for distribution shaped output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  // ASCII rendering, one bin per line.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace idr
