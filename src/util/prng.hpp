// Deterministic pseudo-random number generation for simulations.
//
// All experiments in this repository are reproducible from a single 64-bit
// seed. We use xoshiro256** (public domain, Blackman & Vigna) seeded via
// SplitMix64, rather than std::mt19937, because its state is tiny, it is
// fast, and -- critically -- its output sequence is stable across standard
// library implementations, so recorded experiment outputs stay valid.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace idr {

// SplitMix64: used to expand a single seed into xoshiro state.
// Also usable directly as a cheap hash/mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x1d2b5f9e6ad41ca3ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] (inclusive). Debiased via rejection.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return uniform(0, n - 1); }

  // Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Exponentially distributed value with the given mean (for link delays
  // and failure inter-arrival times).
  double exponential(double mean) noexcept;

  // Pick a uniformly random element index from a non-empty span.
  template <typename T>
  std::size_t pick_index(std::span<const T> items) noexcept {
    return static_cast<std::size_t>(below(items.size()));
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[static_cast<std::size_t>(below(i))]);
    }
  }

  // Derive an independent child generator (for parallel sub-experiments
  // that must not perturb each other's streams).
  Prng fork() noexcept { return Prng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace idr
