// Invariant checking. IDR_CHECK is always on (simulation correctness beats
// the last few percent of throughput); violations abort with location info.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace idr::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "IDR_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " -- " : "", msg);
  std::abort();
}
}  // namespace idr::detail

#define IDR_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::idr::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define IDR_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::idr::detail::check_failed(#expr, __FILE__, __LINE__, (msg));      \
  } while (false)
