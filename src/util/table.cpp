#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace idr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  IDR_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  IDR_CHECK_MSG(cells.size() <= headers_.size(), "row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::ratio(double num, double den, int precision) {
  if (den == 0.0) return "n/a";
  return Table::num(num / den, precision);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace idr
