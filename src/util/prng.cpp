#include "util/prng.hpp"

#include <cmath>

namespace idr {

std::uint64_t Prng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t range = hi - lo;  // inclusive width - 1
  if (range == max()) return (*this)();
  const std::uint64_t bound = range + 1;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + r % bound;
  }
}

double Prng::exponential(double mean) noexcept {
  // Inverse CDF; clamp away from log(0).
  double u = uniform01();
  if (u >= 1.0) u = 0x1.fffffffffffffp-1;
  return -mean * std::log1p(-u);
}

}  // namespace idr
