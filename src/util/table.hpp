// Console table rendering for benchmark output. Benchmarks print the rows
// the paper's tables/claims correspond to; this keeps them aligned and
// machine-greppable (also emits CSV).
#pragma once

#include <string>
#include <vector>

namespace idr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row cells; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  // Convenience: format doubles/ints into cells.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);
  static std::string ratio(double num, double den, int precision = 3);

  [[nodiscard]] std::string render() const;       // aligned ASCII
  [[nodiscard]] std::string render_csv() const;   // comma separated
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace idr
