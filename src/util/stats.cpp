#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.hpp"

namespace idr {

double Summary::sum() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  IDR_CHECK(!samples_.empty());
  IDR_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  // Nearest-rank definition.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

std::string Summary::brief() const {
  if (samples_.empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3g sd=%.3g min=%.3g p50=%.3g p90=%.3g max=%.3g",
                count(), mean(), stddev(), min(), percentile(50),
                percentile(90), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  IDR_CHECK(hi > lo);
  IDR_CHECK(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof head, "[%8.3g,%8.3g) %6zu ",
                  lo_ + bin_width * static_cast<double>(i),
                  lo_ + bin_width * static_cast<double>(i + 1), counts_[i]);
    out += head;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace idr
