// Minimal leveled logger. Protocol nodes log through this so examples can
// narrate what the simulation does; benchmarks run with logging off.
#pragma once

#include <cstdarg>
#include <string>

namespace idr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Default: kWarn.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

// printf-style logging to stderr with a level prefix.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace idr

#define IDR_LOG_DEBUG(...) ::idr::logf(::idr::LogLevel::kDebug, __VA_ARGS__)
#define IDR_LOG_INFO(...) ::idr::logf(::idr::LogLevel::kInfo, __VA_ARGS__)
#define IDR_LOG_WARN(...) ::idr::logf(::idr::LogLevel::kWarn, __VA_ARGS__)
#define IDR_LOG_ERROR(...) ::idr::logf(::idr::LogLevel::kError, __VA_ARGS__)
