// Insertion-ordered open-addressing hash map for integer keys.
//
// Keys and values live in parallel dense vectors (struct-of-arrays); a
// separate open-addressing slot table maps key -> dense index. This gives
// the routing tables (FIBs/RIBs/LSDBs) three properties std::unordered_map
// lacks at paper scale (~1e5 ADs):
//  - iteration touches contiguous memory (the DRMSim lesson: memory layout
//    is the first wall for large routing simulation, not CPU);
//  - iteration order is insertion order, which is a deterministic function
//    of the event sequence -- never of hash-table internals -- so protocol
//    behavior that depends on table walks is reproducible by construction;
//  - ~8 bytes of index overhead per entry instead of a heap node per entry.
//
// erase() swap-removes from the dense arrays (the last element moves into
// the hole), so erasing perturbs relative order of the tail element; all
// call sites in this repository either tolerate that or re-sort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace idr {

template <typename K, typename V>
class DenseMap {
 public:
  DenseMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

  void clear() {
    keys_.clear();
    values_.clear();
    slots_.clear();
    tombstones_ = 0;
  }

  void reserve(std::size_t n) {
    keys_.reserve(n);
    values_.reserve(n);
    if (slot_count_for(n) > slots_.size()) rebuild_slots(slot_count_for(n));
  }

  [[nodiscard]] V* find(K key) noexcept {
    const std::size_t i = find_index(key);
    return i == kNpos ? nullptr : &values_[i];
  }
  [[nodiscard]] const V* find(K key) const noexcept {
    const std::size_t i = find_index(key);
    return i == kNpos ? nullptr : &values_[i];
  }
  [[nodiscard]] bool contains(K key) const noexcept {
    return find_index(key) != kNpos;
  }

  // Inserts a default-constructed value if the key is absent.
  V& operator[](K key) {
    return try_emplace(key).first;
  }

  // Returns {value, inserted}.
  template <typename... Args>
  std::pair<V&, bool> try_emplace(K key, Args&&... args) {
    maybe_grow();
    std::size_t slot = probe_start(key);
    std::size_t insert_at = kNpos;
    for (;;) {
      const std::uint32_t s = slots_[slot];
      if (s == kEmpty) {
        if (insert_at == kNpos) insert_at = slot;
        break;
      }
      if (s == kTombstone) {
        if (insert_at == kNpos) insert_at = slot;
      } else if (keys_[s - kBase] == key) {
        return {values_[s - kBase], false};
      }
      slot = (slot + 1) & (slots_.size() - 1);
    }
    if (slots_[insert_at] == kTombstone) --tombstones_;
    slots_[insert_at] = static_cast<std::uint32_t>(keys_.size()) + kBase;
    keys_.push_back(key);
    values_.emplace_back(std::forward<Args>(args)...);
    return {values_.back(), true};
  }

  bool erase(K key) {
    if (slots_.empty()) return false;
    std::size_t slot = probe_start(key);
    for (;;) {
      const std::uint32_t s = slots_[slot];
      if (s == kEmpty) return false;
      if (s != kTombstone && keys_[s - kBase] == key) {
        const std::size_t i = s - kBase;
        slots_[slot] = kTombstone;
        ++tombstones_;
        const std::size_t last = keys_.size() - 1;
        if (i != last) {
          // Swap-remove: move the tail entry into the hole and repoint
          // its slot at the new index.
          keys_[i] = keys_[last];
          values_[i] = std::move(values_[last]);
          repoint(keys_[i], static_cast<std::uint32_t>(i) + kBase);
        }
        keys_.pop_back();
        values_.pop_back();
        return true;
      }
      slot = (slot + 1) & (slots_.size() - 1);
    }
  }

  [[nodiscard]] const std::vector<K>& keys() const noexcept { return keys_; }
  [[nodiscard]] std::vector<V>& values() noexcept { return values_; }
  [[nodiscard]] const std::vector<V>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] K key_at(std::size_t i) const noexcept { return keys_[i]; }
  [[nodiscard]] V& value_at(std::size_t i) noexcept { return values_[i]; }
  [[nodiscard]] const V& value_at(std::size_t i) const noexcept {
    return values_[i];
  }

  // Iteration in insertion order; dereferencing yields a proxy with
  // reference members, so use `for (auto [key, value] : map)`.
  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const DenseMap, DenseMap>;
    using Val = std::conditional_t<Const, const V, V>;
    struct Ref {
      const K& first;
      Val& second;
    };
    Iter(Map* m, std::size_t i) noexcept : m_(m), i_(i) {}
    Ref operator*() const noexcept { return {m_->keys_[i_], m_->values_[i_]}; }
    Iter& operator++() noexcept {
      ++i_;
      return *this;
    }
    bool operator!=(const Iter& other) const noexcept { return i_ != other.i_; }
    bool operator==(const Iter& other) const noexcept { return i_ == other.i_; }

   private:
    Map* m_;
    std::size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() noexcept { return {this, 0}; }
  iterator end() noexcept { return {this, keys_.size()}; }
  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, keys_.size()}; }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kTombstone = 1;
  static constexpr std::uint32_t kBase = 2;  // slot value = dense index + 2
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::size_t probe_start(K key) const noexcept {
    return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key))) &
           (slots_.size() - 1);
  }

  [[nodiscard]] static std::size_t slot_count_for(std::size_t n) noexcept {
    std::size_t c = 16;
    while (c * 3 < n * 4 + 4) c *= 2;  // keep load factor under 0.75
    return c;
  }

  [[nodiscard]] std::size_t find_index(K key) const noexcept {
    if (slots_.empty()) return kNpos;
    std::size_t slot = probe_start(key);
    for (;;) {
      const std::uint32_t s = slots_[slot];
      if (s == kEmpty) return kNpos;
      if (s != kTombstone && keys_[s - kBase] == key) return s - kBase;
      slot = (slot + 1) & (slots_.size() - 1);
    }
  }

  void repoint(K key, std::uint32_t slot_value) noexcept {
    std::size_t slot = probe_start(key);
    for (;;) {
      const std::uint32_t s = slots_[slot];
      if (s >= kBase && keys_[s - kBase] == key) {
        slots_[slot] = slot_value;
        return;
      }
      slot = (slot + 1) & (slots_.size() - 1);
    }
  }

  void maybe_grow() {
    if (slots_.empty()) {
      rebuild_slots(16);
      return;
    }
    if ((keys_.size() + tombstones_ + 1) * 4 >= slots_.size() * 3) {
      rebuild_slots(slot_count_for(keys_.size() + 1));
    }
  }

  void rebuild_slots(std::size_t nslots) {
    slots_.assign(nslots, kEmpty);
    tombstones_ = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      std::size_t slot = probe_start(keys_[i]);
      while (slots_[slot] != kEmpty) slot = (slot + 1) & (nslots - 1);
      slots_[slot] = static_cast<std::uint32_t>(i) + kBase;
    }
  }

  std::vector<K> keys_;
  std::vector<V> values_;
  std::vector<std::uint32_t> slots_;
  std::size_t tombstones_ = 0;
};

}  // namespace idr
