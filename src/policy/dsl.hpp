// A small textual policy language.
//
// The paper (§6) expects "local administrators to specify policies for
// their ADs"; this module gives them a configuration syntax instead of
// C++ structure literals. One statement per line; '#' starts a comment.
//
//   term owner=Reg-1 src={Campus-0,Campus-2} dst=* prev=* next={BB-West} \
//        qos={default,low-delay} uci={research} hours=8-18 cost=3
//   source Campus-0 avoid={BB-East} max-hops=12 prefer=cost
//
// AD names resolve against the Topology's AD names. `*` means "any".
// Omitted attributes default to "any" / full masks / cost 1.
// parse_policies() returns either a PolicySet or a diagnostic with the
// offending line. format_policies() renders a PolicySet back to the
// language (round-trip tested).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "policy/database.hpp"
#include "topology/graph.hpp"

namespace idr {

struct DslError {
  std::size_t line = 0;  // 1-based
  std::string message;

  [[nodiscard]] std::string describe() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

using DslResult = std::variant<PolicySet, DslError>;

// Parses the policy language against `topo` (for name resolution).
DslResult parse_policies(const Topology& topo, std::string_view text);

// Renders a PolicySet in the language; parse(format(p)) == p.
std::string format_policies(const Topology& topo, const PolicySet& policies);

// Finds an AD by exact name; nullopt if missing.
std::optional<AdId> find_ad_by_name(const Topology& topo,
                                    std::string_view name);

}  // namespace idr
