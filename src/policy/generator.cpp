#include "policy/generator.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace idr {
namespace {

// Hierarchical children of `ad`: neighbors across hierarchical links whose
// class is strictly lower in the hierarchy (higher enum value).
std::vector<AdId> hierarchy_children(const Topology& topo, AdId ad) {
  std::vector<AdId> kids;
  for (const Adjacency& adj : topo.neighbors(ad)) {
    const Link& l = topo.link(adj.link);
    if (l.cls != LinkClass::kHierarchical) continue;
    if (static_cast<std::uint8_t>(topo.ad(adj.neighbor).cls) >
        static_cast<std::uint8_t>(topo.ad(ad).cls)) {
      kids.push_back(adj.neighbor);
    }
  }
  return kids;
}

}  // namespace

std::vector<AdId> customer_cone(const Topology& topo, AdId provider) {
  std::vector<AdId> cone;
  std::vector<bool> seen(topo.ad_count(), false);
  std::deque<AdId> frontier{provider};
  seen[provider.v] = true;
  while (!frontier.empty()) {
    const AdId cur = frontier.front();
    frontier.pop_front();
    for (AdId kid : hierarchy_children(topo, cur)) {
      if (seen[kid.v]) continue;
      seen[kid.v] = true;
      cone.push_back(kid);
      frontier.push_back(kid);
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

PolicySet make_open_policies(const Topology& topo) {
  PolicySet policies(topo.ad_count());
  for (const Ad& ad : topo.ads()) {
    if (ad.role == AdRole::kTransit) {
      policies.add_term(open_transit_term(ad.id));
    } else if (ad.role == AdRole::kHybrid) {
      // Limited transit: only flows sourced by or destined to a neighbor.
      std::vector<AdId> neighbors;
      for (const Adjacency& adj : topo.neighbors(ad.id)) {
        neighbors.push_back(adj.neighbor);
      }
      PolicyTerm by_src = open_transit_term(ad.id, 0);
      by_src.sources = AdSet::of(neighbors);
      policies.add_term(std::move(by_src));
      PolicyTerm by_dst = open_transit_term(ad.id, 1);
      by_dst.dests = AdSet::of(neighbors);
      policies.add_term(std::move(by_dst));
    }
    // Stub and multi-homed ADs advertise no transit PTs.
  }
  return policies;
}

PolicySet make_provider_customer_policies(const Topology& topo) {
  PolicySet policies(topo.ad_count());
  for (const Ad& ad : topo.ads()) {
    if (ad.role == AdRole::kHybrid) {
      std::vector<AdId> neighbors;
      for (const Adjacency& adj : topo.neighbors(ad.id)) {
        neighbors.push_back(adj.neighbor);
      }
      PolicyTerm by_src = open_transit_term(ad.id, 0);
      by_src.sources = AdSet::of(neighbors);
      policies.add_term(std::move(by_src));
      PolicyTerm by_dst = open_transit_term(ad.id, 1);
      by_dst.dests = AdSet::of(neighbors);
      policies.add_term(std::move(by_dst));
      continue;
    }
    if (ad.role != AdRole::kTransit) continue;
    if (ad.cls == AdClass::kBackbone) {
      policies.add_term(open_transit_term(ad.id));
      continue;
    }
    // Regional/metro: carry only traffic from or to the customer cone.
    std::vector<AdId> cone = customer_cone(topo, ad.id);
    PolicyTerm from_cone = open_transit_term(ad.id, 0);
    from_cone.sources = AdSet::of(cone);
    policies.add_term(std::move(from_cone));
    PolicyTerm to_cone = open_transit_term(ad.id, 1);
    to_cone.dests = AdSet::of(std::move(cone));
    policies.add_term(std::move(to_cone));
  }
  return policies;
}

PolicySet make_restricted_policies(const Topology& topo,
                                   const PolicySet& base,
                                   const RestrictionParams& params,
                                   Prng& prng) {
  PolicySet policies(topo.ad_count());
  // Copy source policies and base terms; restrict some transit ADs.
  for (const Ad& ad : topo.ads()) {
    policies.source_policy(ad.id) = base.source_policy(ad.id);
    const bool restrict = topo.can_transit(ad.id) &&
                          ad.cls != AdClass::kBackbone &&
                          prng.bernoulli(params.restrict_prob);
    if (!restrict) {
      for (const PolicyTerm& t : base.terms(ad.id)) policies.add_term(t);
      continue;
    }
    for (std::uint32_t k = 0; k < params.terms_per_ad; ++k) {
      PolicyTerm t = open_transit_term(ad.id, k);
      // Source restriction: allow a random subset of all ADs.
      std::vector<AdId> allowed;
      for (const Ad& candidate : topo.ads()) {
        if (prng.bernoulli(params.source_selectivity)) {
          allowed.push_back(candidate.id);
        }
      }
      t.sources = AdSet::of(std::move(allowed));
      if (prng.bernoulli(params.qos_restrict_prob)) {
        t.qos_mask = qos_bit(static_cast<Qos>(prng.below(kQosCount)));
      }
      if (prng.bernoulli(params.uci_restrict_prob)) {
        t.uci_mask =
            uci_bit(static_cast<UserClass>(prng.below(kUserClassCount)));
      }
      if (prng.bernoulli(params.tod_restrict_prob)) {
        t.hour_begin = 8;
        t.hour_end = 18;
      }
      t.cost = static_cast<std::uint32_t>(prng.uniform(1, params.max_cost));
      policies.add_term(std::move(t));
    }
  }
  return policies;
}

void apply_aup(PolicySet& policies, AdId backbone) {
  std::vector<PolicyTerm> revised(policies.terms(backbone).begin(),
                                  policies.terms(backbone).end());
  policies.clear_terms(backbone);
  if (revised.empty()) revised.push_back(open_transit_term(backbone));
  for (PolicyTerm& t : revised) {
    t.uci_mask = uci_bit(UserClass::kResearch);
    policies.add_term(std::move(t));
  }
}

void add_source_avoidance(const Topology& topo, PolicySet& policies,
                          double fraction, Prng& prng) {
  std::vector<AdId> transits;
  for (const Ad& ad : topo.ads()) {
    if (ad.role == AdRole::kTransit) transits.push_back(ad.id);
  }
  if (transits.empty()) return;
  for (const Ad& ad : topo.ads()) {
    if (ad.role != AdRole::kStub && ad.role != AdRole::kMultiHomed) continue;
    if (!prng.bernoulli(fraction)) continue;
    const AdId avoid = prng.pick(transits);
    policies.source_policy(ad.id).avoid.push_back(avoid);
  }
}

}  // namespace idr
