#include "policy/dsl.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <vector>

namespace idr {

std::optional<AdId> find_ad_by_name(const Topology& topo,
                                    std::string_view name) {
  for (const Ad& ad : topo.ads()) {
    if (ad.name == name) return ad.id;
  }
  return std::nullopt;
}

namespace {

// --- tokenizer-lite helpers ------------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits a statement into whitespace-separated fields, keeping {...}
// groups intact.
std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    const std::size_t start = i;
    int depth = 0;
    while (i < line.size() &&
           (depth > 0 || !std::isspace(static_cast<unsigned char>(line[i])))) {
      if (line[i] == '{') ++depth;
      if (line[i] == '}') --depth;
      ++i;
    }
    fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

struct LineParser {
  const Topology& topo;
  std::size_t line_no;
  std::optional<DslError> error;

  void fail(std::string message) {
    if (!error) error = DslError{line_no, std::move(message)};
  }

  std::optional<AdId> ad(std::string_view name) {
    const auto id = find_ad_by_name(topo, name);
    if (!id) fail("unknown AD '" + std::string(name) + "'");
    return id;
  }

  // value is either "*" or "{a,b,c}".
  std::optional<AdSet> ad_set(std::string_view value) {
    if (value == "*") return AdSet::any();
    if (value.size() < 2 || value.front() != '{' || value.back() != '}') {
      fail("expected '*' or '{...}', got '" + std::string(value) + "'");
      return std::nullopt;
    }
    value = value.substr(1, value.size() - 2);
    std::vector<AdId> members;
    while (!value.empty()) {
      const std::size_t comma = value.find(',');
      const std::string_view item = trim(value.substr(0, comma));
      if (!item.empty()) {
        const auto id = ad(item);
        if (!id) return std::nullopt;
        members.push_back(*id);
      }
      if (comma == std::string_view::npos) break;
      value.remove_prefix(comma + 1);
    }
    return AdSet::of(std::move(members));
  }

  std::optional<std::uint32_t> number(std::string_view value) {
    std::uint32_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), out);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
      fail("expected a number, got '" + std::string(value) + "'");
      return std::nullopt;
    }
    return out;
  }

  std::optional<std::uint8_t> qos_mask(std::string_view value) {
    if (value == "*") return kAllQosMask;
    if (value.size() < 2 || value.front() != '{' || value.back() != '}') {
      fail("expected '*' or '{...}' qos list");
      return std::nullopt;
    }
    value = value.substr(1, value.size() - 2);
    std::uint8_t mask = 0;
    while (!value.empty()) {
      const std::size_t comma = value.find(',');
      const std::string_view item = trim(value.substr(0, comma));
      if (item == "default") {
        mask |= qos_bit(Qos::kDefault);
      } else if (item == "low-delay") {
        mask |= qos_bit(Qos::kLowDelay);
      } else if (item == "high-throughput") {
        mask |= qos_bit(Qos::kHighThroughput);
      } else if (item == "high-reliability") {
        mask |= qos_bit(Qos::kHighReliability);
      } else if (!item.empty()) {
        fail("unknown qos class '" + std::string(item) + "'");
        return std::nullopt;
      }
      if (comma == std::string_view::npos) break;
      value.remove_prefix(comma + 1);
    }
    if (mask == 0) {
      fail("empty qos list");
      return std::nullopt;
    }
    return mask;
  }

  std::optional<std::uint8_t> uci_mask(std::string_view value) {
    if (value == "*") return kAllUciMask;
    if (value.size() < 2 || value.front() != '{' || value.back() != '}') {
      fail("expected '*' or '{...}' uci list");
      return std::nullopt;
    }
    value = value.substr(1, value.size() - 2);
    std::uint8_t mask = 0;
    while (!value.empty()) {
      const std::size_t comma = value.find(',');
      const std::string_view item = trim(value.substr(0, comma));
      if (item == "research") {
        mask |= uci_bit(UserClass::kResearch);
      } else if (item == "commercial") {
        mask |= uci_bit(UserClass::kCommercial);
      } else if (item == "government") {
        mask |= uci_bit(UserClass::kGovernment);
      } else if (!item.empty()) {
        fail("unknown user class '" + std::string(item) + "'");
        return std::nullopt;
      }
      if (comma == std::string_view::npos) break;
      value.remove_prefix(comma + 1);
    }
    if (mask == 0) {
      fail("empty uci list");
      return std::nullopt;
    }
    return mask;
  }
};

}  // namespace

DslResult parse_policies(const Topology& topo, std::string_view text) {
  PolicySet policies(topo.ad_count());
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    LineParser p{topo, line_no, std::nullopt};
    const auto fields = split_fields(line);
    const std::string_view keyword = fields[0];

    if (keyword == "term") {
      PolicyTerm term;
      bool have_owner = false;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string_view field = fields[i];
        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) {
          p.fail("expected key=value, got '" + std::string(field) + "'");
          break;
        }
        const std::string_view key = field.substr(0, eq);
        const std::string_view value = field.substr(eq + 1);
        if (key == "owner") {
          if (const auto id = p.ad(value)) {
            term.owner = *id;
            have_owner = true;
          }
        } else if (key == "id") {
          if (const auto n = p.number(value)) term.id = *n;
        } else if (key == "src") {
          if (const auto s = p.ad_set(value)) term.sources = *s;
        } else if (key == "dst") {
          if (const auto s = p.ad_set(value)) term.dests = *s;
        } else if (key == "prev") {
          if (const auto s = p.ad_set(value)) term.prev_hops = *s;
        } else if (key == "next") {
          if (const auto s = p.ad_set(value)) term.next_hops = *s;
        } else if (key == "qos") {
          if (const auto m = p.qos_mask(value)) term.qos_mask = *m;
        } else if (key == "uci") {
          if (const auto m = p.uci_mask(value)) term.uci_mask = *m;
        } else if (key == "hours") {
          const std::size_t dash = value.find('-');
          if (dash == std::string_view::npos) {
            p.fail("hours must be begin-end");
          } else {
            const auto begin = p.number(value.substr(0, dash));
            const auto end = p.number(value.substr(dash + 1));
            if (begin && end) {
              if (*begin > 23 || *end > 23) {
                p.fail("hours out of range 0-23");
              } else {
                term.hour_begin = static_cast<std::uint8_t>(*begin);
                term.hour_end = static_cast<std::uint8_t>(*end);
              }
            }
          }
        } else if (key == "cost") {
          if (const auto n = p.number(value)) term.cost = *n;
        } else {
          p.fail("unknown term attribute '" + std::string(key) + "'");
        }
        if (p.error) break;
      }
      if (!p.error && !have_owner) p.fail("term needs owner=<AD>");
      if (p.error) return *p.error;
      policies.add_term(std::move(term));
    } else if (keyword == "source") {
      if (fields.size() < 2) {
        p.fail("source needs an AD name");
        return *p.error;
      }
      const auto src = p.ad(fields[1]);
      if (!src) return *p.error;
      SourcePolicy& sp = policies.source_policy(*src);
      for (std::size_t i = 2; i < fields.size(); ++i) {
        const std::string_view field = fields[i];
        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) {
          p.fail("expected key=value, got '" + std::string(field) + "'");
          break;
        }
        const std::string_view key = field.substr(0, eq);
        const std::string_view value = field.substr(eq + 1);
        if (key == "avoid") {
          if (const auto s = p.ad_set(value)) {
            sp.avoid.assign(s->members().begin(), s->members().end());
          }
        } else if (key == "max-hops") {
          if (const auto n = p.number(value)) sp.max_hops = *n;
        } else if (key == "prefer") {
          if (value == "cost") {
            sp.prefer_min_cost = true;
          } else if (value == "hops") {
            sp.prefer_min_cost = false;
          } else {
            p.fail("prefer must be cost|hops");
          }
        } else {
          p.fail("unknown source attribute '" + std::string(key) + "'");
        }
        if (p.error) break;
      }
      if (p.error) return *p.error;
    } else {
      return DslError{line_no,
                      "unknown statement '" + std::string(keyword) + "'"};
    }
  }
  return policies;
}

namespace {

std::string render_set(const Topology& topo, const AdSet& set) {
  if (set.is_any()) return "*";
  std::string out = "{";
  for (std::size_t i = 0; i < set.members().size(); ++i) {
    if (i) out += ",";
    out += topo.ad(set.members()[i]).name;
  }
  out += "}";
  return out;
}

std::string render_qos(std::uint8_t mask) {
  if (mask == kAllQosMask) return "*";
  static const char* names[] = {"default", "low-delay", "high-throughput",
                                "high-reliability"};
  std::string out = "{";
  bool first = true;
  for (std::uint8_t q = 0; q < kQosCount; ++q) {
    if ((mask & (1u << q)) == 0) continue;
    if (!first) out += ",";
    out += names[q];
    first = false;
  }
  out += "}";
  return out;
}

std::string render_uci(std::uint8_t mask) {
  if (mask == kAllUciMask) return "*";
  static const char* names[] = {"research", "commercial", "government"};
  std::string out = "{";
  bool first = true;
  for (std::uint8_t u = 0; u < kUserClassCount; ++u) {
    if ((mask & (1u << u)) == 0) continue;
    if (!first) out += ",";
    out += names[u];
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

std::string format_policies(const Topology& topo, const PolicySet& policies) {
  std::string out;
  for (const Ad& ad : topo.ads()) {
    for (const PolicyTerm& t : policies.terms(ad.id)) {
      out += "term owner=" + topo.ad(t.owner).name;
      out += " id=" + std::to_string(t.id);
      out += " src=" + render_set(topo, t.sources);
      out += " dst=" + render_set(topo, t.dests);
      out += " prev=" + render_set(topo, t.prev_hops);
      out += " next=" + render_set(topo, t.next_hops);
      out += " qos=" + render_qos(t.qos_mask);
      out += " uci=" + render_uci(t.uci_mask);
      out += " hours=" + std::to_string(t.hour_begin) + "-" +
             std::to_string(t.hour_end);
      out += " cost=" + std::to_string(t.cost);
      out += "\n";
    }
  }
  for (const Ad& ad : topo.ads()) {
    const SourcePolicy& sp = policies.source_policy(ad.id);
    const SourcePolicy defaults;
    if (sp.avoid.empty() && sp.max_hops == defaults.max_hops &&
        sp.prefer_min_cost == defaults.prefer_min_cost) {
      continue;
    }
    out += "source " + ad.name;
    if (!sp.avoid.empty()) {
      out += " avoid=" + render_set(topo, AdSet::of(sp.avoid));
    }
    out += " max-hops=" + std::to_string(sp.max_hops);
    out += " prefer=";
    out += sp.prefer_min_cost ? "cost" : "hops";
    out += "\n";
  }
  return out;
}

}  // namespace idr
