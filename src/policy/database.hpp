// Policy databases: the full policy state of an internet.
//
// For each AD this holds (a) its transit Policy Terms -- the conditions
// under which it will carry other ADs' traffic -- and (b) its source
// route-selection criteria (paper §2.3: "policies of the source"), which
// constrain the routes the AD itself is willing to use.
//
// The central predicate, path_is_legal(), defines ground truth for the
// whole repository: a route is legal iff it is AD-loop-free, every
// consecutive pair of ADs is joined by a live link, every *intermediate*
// AD both has a transit-capable role and advertises a Policy Term
// permitting the flow in context (previous AD, next AD), and the path
// satisfies the source AD's route-selection criteria.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "policy/term.hpp"
#include "topology/graph.hpp"

namespace idr {

// Source route-selection criteria (applied only by the source itself;
// unlike transit PTs these are never advertised -- paper §5.2 notes that
// hop-by-hop designs give the source no way to assert them remotely).
struct SourcePolicy {
  std::vector<AdId> avoid;       // transit ADs this source refuses to cross
  std::uint32_t max_hops = 32;   // maximum ADs in a path, inclusive
  bool prefer_min_cost = true;   // route choice: min PT cost, else min hops

  [[nodiscard]] bool avoids(AdId ad) const noexcept;
};

class PolicySet {
 public:
  PolicySet() = default;
  explicit PolicySet(std::size_t ad_count) { resize(ad_count); }

  void resize(std::size_t ad_count);
  [[nodiscard]] std::size_t ad_count() const noexcept {
    return terms_.size();
  }

  // Adds a term owned by term.owner; assigns a fresh per-owner id if the
  // given id collides.
  void add_term(PolicyTerm term);
  void clear_terms(AdId owner);

  [[nodiscard]] std::span<const PolicyTerm> terms(AdId owner) const;
  [[nodiscard]] std::size_t total_terms() const noexcept;

  [[nodiscard]] const SourcePolicy& source_policy(AdId ad) const;
  SourcePolicy& source_policy(AdId ad);

  // Cheapest PT of `ad` permitting `flow` to transit from `prev` to
  // `next`; nullopt if none permits. Role is NOT checked here.
  [[nodiscard]] std::optional<std::uint32_t> transit_cost(
      AdId ad, const FlowSpec& flow, AdId prev, AdId next) const;

  // True iff `ad` may carry `flow` as transit in context: role allows
  // transit AND some PT permits.
  [[nodiscard]] bool ad_permits_transit(const Topology& topo, AdId ad,
                                        const FlowSpec& flow, AdId prev,
                                        AdId next) const;

  // Ground-truth route legality (see file comment). `path` must start at
  // flow.src and end at flow.dst.
  [[nodiscard]] bool path_is_legal(const Topology& topo, const FlowSpec& flow,
                                   std::span<const AdId> path) const;

  // Total cost of a legal path: sum over intermediate ADs of their
  // cheapest permitting PT plus link metrics; nullopt if illegal.
  [[nodiscard]] std::optional<std::uint64_t> path_cost(
      const Topology& topo, const FlowSpec& flow,
      std::span<const AdId> path) const;

  // Source-side acceptability only (avoid list, hop budget).
  [[nodiscard]] bool source_accepts(const FlowSpec& flow,
                                    std::span<const AdId> path) const;

 private:
  std::vector<std::vector<PolicyTerm>> terms_;   // indexed by AdId
  std::vector<SourcePolicy> source_policies_;    // indexed by AdId
};

}  // namespace idr
