// Flow specifications (paper §2.3): the attributes on which source and
// transit policies may discriminate -- source AD, destination AD, Quality
// of Service, User Class Identifier (UCI), and time of day.
#pragma once

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace idr {

// Quality of Service classes (paper §3 mentions IGP support for a small
// number of QoS classes; we model four, matching OSPF-era TOS routing).
enum class Qos : std::uint8_t {
  kDefault = 0,
  kLowDelay = 1,
  kHighThroughput = 2,
  kHighReliability = 3,
};
inline constexpr std::uint8_t kQosCount = 4;

// User Class Identifier (paper §2.3, §5.1.1): the traffic-class attribute
// underlying acceptable-use policies (e.g. the NSFNET research-only AUP).
enum class UserClass : std::uint8_t {
  kResearch = 0,
  kCommercial = 1,
  kGovernment = 2,
};
inline constexpr std::uint8_t kUserClassCount = 3;

const char* to_string(Qos q) noexcept;
const char* to_string(UserClass u) noexcept;

// Everything a policy decision may depend on for one packet flow.
struct FlowSpec {
  AdId src;
  AdId dst;
  Qos qos = Qos::kDefault;
  UserClass uci = UserClass::kResearch;
  std::uint8_t hour = 12;  // local time of day, 0..23

  [[nodiscard]] std::string describe(const Topology& topo) const;

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

// The policy-relevant equivalence class of a flow excluding its endpoints:
// (QoS, UCI, hour bucket). Hop-by-hop architectures must disambiguate
// packets at this granularity (plus source, for source-specific policy);
// this key is what their FIBs are indexed by.
struct TrafficClass {
  Qos qos = Qos::kDefault;
  UserClass uci = UserClass::kResearch;
  std::uint8_t hour = 12;

  friend bool operator==(const TrafficClass&, const TrafficClass&) = default;
  [[nodiscard]] std::uint32_t index() const noexcept {
    return (static_cast<std::uint32_t>(qos) * kUserClassCount +
            static_cast<std::uint32_t>(uci)) *
               24 +
           hour;
  }
  static constexpr std::uint32_t kIndexCount =
      static_cast<std::uint32_t>(kQosCount) * kUserClassCount * 24;
};

inline TrafficClass traffic_class_of(const FlowSpec& flow) noexcept {
  return TrafficClass{flow.qos, flow.uci, flow.hour};
}

}  // namespace idr
