#include "policy/term.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace idr {

AdSet AdSet::of(std::vector<AdId> members) {
  AdSet s;
  s.any_ = false;
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  s.members_ = std::move(members);
  return s;
}

bool AdSet::contains(AdId id) const noexcept {
  if (any_) return true;
  return std::binary_search(members_.begin(), members_.end(), id);
}

void AdSet::encode(wire::Writer& w) const {
  w.u8(any_ ? 1 : 0);
  if (!any_) {
    std::vector<std::uint32_t> raw;
    raw.reserve(members_.size());
    for (AdId id : members_) raw.push_back(id.v);
    w.u32_list(raw);
  }
}

AdSet AdSet::decode(wire::Reader& r) {
  const std::uint8_t any = r.u8();
  if (any) return AdSet::any();
  std::vector<AdId> members;
  for (std::uint32_t v : r.u32_list()) members.push_back(AdId{v});
  return AdSet::of(std::move(members));
}

bool PolicyTerm::hour_in_window(std::uint8_t hour) const noexcept {
  if (hour_begin <= hour_end) return hour >= hour_begin && hour <= hour_end;
  return hour >= hour_begin || hour <= hour_end;  // wraps past midnight
}

bool PolicyTerm::permits(const FlowSpec& flow, AdId prev,
                         AdId next) const noexcept {
  if ((qos_mask & qos_bit(flow.qos)) == 0) return false;
  if ((uci_mask & uci_bit(flow.uci)) == 0) return false;
  if (!hour_in_window(flow.hour)) return false;
  if (!sources.contains(flow.src)) return false;
  if (!dests.contains(flow.dst)) return false;
  if (!prev_hops.contains(prev)) return false;
  if (!next_hops.contains(next)) return false;
  return true;
}

void PolicyTerm::encode(wire::Writer& w) const {
  w.u32(id);
  w.u32(owner.v);
  sources.encode(w);
  dests.encode(w);
  prev_hops.encode(w);
  next_hops.encode(w);
  w.u8(qos_mask);
  w.u8(uci_mask);
  w.u8(hour_begin);
  w.u8(hour_end);
  w.u32(cost);
}

std::optional<PolicyTerm> PolicyTerm::decode(wire::Reader& r) {
  PolicyTerm t;
  t.id = r.u32();
  t.owner = AdId{r.u32()};
  t.sources = AdSet::decode(r);
  t.dests = AdSet::decode(r);
  t.prev_hops = AdSet::decode(r);
  t.next_hops = AdSet::decode(r);
  t.qos_mask = r.u8();
  t.uci_mask = r.u8();
  t.hour_begin = r.u8();
  t.hour_end = r.u8();
  t.cost = r.u32();
  if (!r.ok()) return std::nullopt;
  if (t.hour_begin > 23 || t.hour_end > 23) return std::nullopt;
  return t;
}

std::string PolicyTerm::describe(const Topology& topo) const {
  std::string out = "PT#" + std::to_string(id) + "@" + topo.ad(owner).name;
  auto set_desc = [&](const char* label, const AdSet& s) {
    out += " ";
    out += label;
    out += "=";
    if (s.is_any()) {
      out += "*";
    } else {
      out += "{";
      for (std::size_t i = 0; i < s.members().size(); ++i) {
        if (i) out += ",";
        out += topo.ad(s.members()[i]).name;
      }
      out += "}";
    }
  };
  set_desc("src", sources);
  set_desc("dst", dests);
  set_desc("prev", prev_hops);
  set_desc("next", next_hops);
  char buf[96];
  std::snprintf(buf, sizeof buf, " qos=%02x uci=%02x hours=[%u,%u] cost=%u",
                qos_mask, uci_mask, hour_begin, hour_end, cost);
  out += buf;
  return out;
}

PolicyTerm open_transit_term(AdId owner, std::uint32_t id,
                             std::uint32_t cost) {
  PolicyTerm t;
  t.id = id;
  t.owner = owner;
  t.cost = cost;
  return t;  // all sets default to "any", masks to all, window to full day
}

}  // namespace idr
