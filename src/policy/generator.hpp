// Policy-mix generators: build PolicySets expressing the policy shapes the
// paper discusses (§2.3): open transit, provider/customer ("carry traffic
// only for my customer cone"), acceptable-use (UCI) restrictions on a
// backbone, QoS subsets, time-of-day windows, and randomly sampled
// source-specific restrictions of tunable selectivity -- the knob used by
// the route-availability and policy-granularity experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "policy/database.hpp"
#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {

// Every transit AD: one allow-all PT. Hybrid ADs: PTs permitting transit
// only for flows sourced by or destined to a directly adjacent AD
// ("limited transit", paper §2.1).
PolicySet make_open_policies(const Topology& topo);

// Provider/customer policies: each regional/metro transit AD only carries
// flows whose source or destination lies in its hierarchical customer
// cone; backbones carry everything. This is the policy structure the
// paper's hierarchical topology motivates.
PolicySet make_provider_customer_policies(const Topology& topo);

// Customer cone of `provider`: all ADs reachable by descending hierarchical
// links only (provider itself excluded).
std::vector<AdId> customer_cone(const Topology& topo, AdId provider);

struct RestrictionParams {
  // Probability a transit AD replaces its open/cone PTs with restricted ones.
  double restrict_prob = 0.3;
  // For a restricted AD: number of PTs it advertises.
  std::uint32_t terms_per_ad = 3;
  // Each restricted PT allows this fraction of ADs as sources.
  double source_selectivity = 0.5;
  // Probability a restricted PT limits QoS to one class.
  double qos_restrict_prob = 0.2;
  // Probability a restricted PT limits UCI to one class.
  double uci_restrict_prob = 0.2;
  // Probability a restricted PT has a (business-hours) time window.
  double tod_restrict_prob = 0.1;
  // PT costs drawn uniformly from [1, max_cost].
  std::uint32_t max_cost = 8;
};

// Starts from `base` (e.g. provider/customer) and randomly restricts
// transit ADs per `params`. Deterministic in prng.
PolicySet make_restricted_policies(const Topology& topo,
                                   const PolicySet& base,
                                   const RestrictionParams& params,
                                   Prng& prng);

// Applies a research-only acceptable-use policy to `backbone` (all its PTs
// get uci_mask = research), modeling the NSFNET AUP scenario.
void apply_aup(PolicySet& policies, AdId backbone);

// Gives `fraction` of stub ADs a random avoid-list entry (a transit AD
// they refuse to cross): source route-selection criteria.
void add_source_avoidance(const Topology& topo, PolicySet& policies,
                          double fraction, Prng& prng);

}  // namespace idr
