// Policy Terms (paper §4.2, §5.4.1, after Clark's RFC 1102).
//
// A Policy Term (PT) is advertised by a transit AD and states the
// conditions under which traffic may cross it: constraints on the source
// AD, destination AD, previous AD and next AD in the path, permitted QoS
// and user classes, a time-of-day window, and a cost (charging proxy).
// A flow may transit an AD arriving from `prev` and departing toward
// `next` iff at least one of the AD's PTs permits that combination.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "policy/flow.hpp"
#include "topology/graph.hpp"
#include "wire/codec.hpp"

namespace idr {

// A set of ADs: either "any AD" or an explicit sorted member list.
class AdSet {
 public:
  AdSet() = default;  // matches any AD

  static AdSet any() { return AdSet{}; }
  static AdSet of(std::vector<AdId> members);
  static AdSet none() { return of({}); }

  [[nodiscard]] bool is_any() const noexcept { return any_; }
  [[nodiscard]] bool contains(AdId id) const noexcept;
  [[nodiscard]] const std::vector<AdId>& members() const noexcept {
    return members_;
  }

  void encode(wire::Writer& w) const;
  static AdSet decode(wire::Reader& r);

  friend bool operator==(const AdSet&, const AdSet&) = default;

 private:
  bool any_ = true;
  std::vector<AdId> members_;  // sorted, unique
};

// Bitmask helpers for QoS / user-class sets.
inline constexpr std::uint8_t kAllQosMask = (1u << kQosCount) - 1;
inline constexpr std::uint8_t kAllUciMask = (1u << kUserClassCount) - 1;
constexpr std::uint8_t qos_bit(Qos q) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(q));
}
constexpr std::uint8_t uci_bit(UserClass u) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(u));
}

struct PolicyTerm {
  std::uint32_t id = 0;  // unique among the owner's terms
  AdId owner;            // transit AD advertising this term

  AdSet sources;    // source ADs allowed to use this term
  AdSet dests;      // destination ADs reachable through this term
  AdSet prev_hops;  // ADs traffic may arrive from
  AdSet next_hops;  // ADs traffic may depart toward

  std::uint8_t qos_mask = kAllQosMask;
  std::uint8_t uci_mask = kAllUciMask;
  std::uint8_t hour_begin = 0;   // inclusive time-of-day window; a window
  std::uint8_t hour_end = 23;    // with begin > end wraps past midnight

  std::uint32_t cost = 1;  // charging/metric proxy for this transit service

  // True iff this term allows `flow` to cross `owner`, arriving from
  // `prev` and departing toward `next`.
  [[nodiscard]] bool permits(const FlowSpec& flow, AdId prev,
                             AdId next) const noexcept;

  [[nodiscard]] bool hour_in_window(std::uint8_t hour) const noexcept;

  void encode(wire::Writer& w) const;
  static std::optional<PolicyTerm> decode(wire::Reader& r);

  [[nodiscard]] std::string describe(const Topology& topo) const;

  friend bool operator==(const PolicyTerm&, const PolicyTerm&) = default;
};

// Convenience constructors for the common policy shapes.
PolicyTerm open_transit_term(AdId owner, std::uint32_t id = 0,
                             std::uint32_t cost = 1);

}  // namespace idr
