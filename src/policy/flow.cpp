#include "policy/flow.hpp"

namespace idr {

const char* to_string(Qos q) noexcept {
  switch (q) {
    case Qos::kDefault: return "default";
    case Qos::kLowDelay: return "low-delay";
    case Qos::kHighThroughput: return "high-throughput";
    case Qos::kHighReliability: return "high-reliability";
  }
  return "?";
}

const char* to_string(UserClass u) noexcept {
  switch (u) {
    case UserClass::kResearch: return "research";
    case UserClass::kCommercial: return "commercial";
    case UserClass::kGovernment: return "government";
  }
  return "?";
}

std::string FlowSpec::describe(const Topology& topo) const {
  std::string out = topo.ad(src).name + " -> " + topo.ad(dst).name;
  out += " [qos=";
  out += to_string(qos);
  out += " uci=";
  out += to_string(uci);
  out += " hour=" + std::to_string(hour) + "]";
  return out;
}

}  // namespace idr
