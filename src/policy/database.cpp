#include "policy/database.hpp"

#include <algorithm>
#include <unordered_set>

#include "topology/algos.hpp"
#include "util/check.hpp"

namespace idr {

bool SourcePolicy::avoids(AdId ad) const noexcept {
  return std::find(avoid.begin(), avoid.end(), ad) != avoid.end();
}

void PolicySet::resize(std::size_t ad_count) {
  terms_.resize(ad_count);
  source_policies_.resize(ad_count);
}

void PolicySet::add_term(PolicyTerm term) {
  IDR_CHECK(term.owner.v < terms_.size());
  auto& owned = terms_[term.owner.v];
  const bool collides = std::any_of(
      owned.begin(), owned.end(),
      [&](const PolicyTerm& t) { return t.id == term.id; });
  if (collides) {
    std::uint32_t next_id = 0;
    for (const PolicyTerm& t : owned) next_id = std::max(next_id, t.id + 1);
    term.id = next_id;
  }
  owned.push_back(std::move(term));
}

void PolicySet::clear_terms(AdId owner) {
  IDR_CHECK(owner.v < terms_.size());
  terms_[owner.v].clear();
}

std::span<const PolicyTerm> PolicySet::terms(AdId owner) const {
  IDR_CHECK(owner.v < terms_.size());
  return terms_[owner.v];
}

std::size_t PolicySet::total_terms() const noexcept {
  std::size_t n = 0;
  for (const auto& owned : terms_) n += owned.size();
  return n;
}

const SourcePolicy& PolicySet::source_policy(AdId ad) const {
  IDR_CHECK(ad.v < source_policies_.size());
  return source_policies_[ad.v];
}

SourcePolicy& PolicySet::source_policy(AdId ad) {
  IDR_CHECK(ad.v < source_policies_.size());
  return source_policies_[ad.v];
}

std::optional<std::uint32_t> PolicySet::transit_cost(AdId ad,
                                                     const FlowSpec& flow,
                                                     AdId prev,
                                                     AdId next) const {
  std::optional<std::uint32_t> best;
  for (const PolicyTerm& t : terms(ad)) {
    if (!t.permits(flow, prev, next)) continue;
    if (!best || t.cost < *best) best = t.cost;
  }
  return best;
}

bool PolicySet::ad_permits_transit(const Topology& topo, AdId ad,
                                   const FlowSpec& flow, AdId prev,
                                   AdId next) const {
  if (!topo.can_transit(ad)) return false;
  return transit_cost(ad, flow, prev, next).has_value();
}

bool PolicySet::source_accepts(const FlowSpec& flow,
                               std::span<const AdId> path) const {
  const SourcePolicy& sp = source_policy(flow.src);
  if (path.size() > sp.max_hops) return false;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (sp.avoids(path[i])) return false;
  }
  return true;
}

bool PolicySet::path_is_legal(const Topology& topo, const FlowSpec& flow,
                              std::span<const AdId> path) const {
  if (path.size() < 2) return path.size() == 1 && flow.src == flow.dst;
  if (path.front() != flow.src || path.back() != flow.dst) return false;

  // Loop-freedom at AD granularity.
  std::unordered_set<std::uint32_t> seen;
  for (const AdId& ad : path) {
    if (!seen.insert(ad.v).second) return false;
  }

  // Physical connectivity over live links.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    if (!link || !topo.link(*link).up) return false;
  }

  // Every intermediate AD must permit the flow in context.
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (!ad_permits_transit(topo, path[i], flow, path[i - 1], path[i + 1])) {
      return false;
    }
  }

  return source_accepts(flow, path);
}

std::optional<std::uint64_t> PolicySet::path_cost(
    const Topology& topo, const FlowSpec& flow,
    std::span<const AdId> path) const {
  if (!path_is_legal(topo, flow, path)) return std::nullopt;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    total += topo.link(*link).metric;
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const auto cost =
        transit_cost(path[i], flow, path[i - 1], path[i + 1]);
    total += *cost;
  }
  return total;
}

}  // namespace idr
