// The administrator's what-if tool the paper calls for in §6: before
// committing a policy change, predict which flows lose service, which
// divert, and what it does to your own transit load.
//
// Scenario: Reg-1's administrator drafts two candidate policies in the
// textual policy language and compares their impact on a realistic flow
// sample. Also writes figure1.dot (Graphviz) with a highlighted policy
// route for the write-up.
//
//   ./build/examples/policy_impact
#include <cstdio>
#include <fstream>

#include "core/impact.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "policy/dsl.hpp"
#include "policy/generator.hpp"
#include "topology/dot.hpp"
#include "topology/figure1.hpp"

int main() {
  using namespace idr;

  Figure1 fig = build_figure1();
  PolicySet current = make_open_policies(fig.topo);

  // A flow sample: all campus pairs, half during business hours and half
  // overnight (batch transfers), so time-of-day policies show their
  // teeth.
  std::vector<FlowSpec> flows;
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (s == d) continue;
      FlowSpec flow{fig.campus[s], fig.campus[d]};
      flow.hour = (s + d) % 2 == 0 ? 14 : 2;
      flows.push_back(flow);
    }
  }

  // Two proposals for Reg-1, written in the policy language.
  struct Proposal {
    const char* label;
    const char* text;
  };
  const Proposal proposals[] = {
      {"business-hours-only",
       "term owner=Reg-1 hours=8-18 cost=1\n"},
      {"customers-only (no lateral transit)",
       "term owner=Reg-1 src={Campus-2,Campus-3,Campus-MH} cost=1\n"
       "term owner=Reg-1 dst={Campus-2,Campus-3,Campus-MH} cost=1\n"},
  };

  for (const Proposal& proposal : proposals) {
    const DslResult parsed = parse_policies(fig.topo, proposal.text);
    if (std::holds_alternative<DslError>(parsed)) {
      std::printf("parse error: %s\n",
                  std::get<DslError>(parsed).describe().c_str());
      return 1;
    }
    const PolicySet& as_set = std::get<PolicySet>(parsed);
    const auto terms = as_set.terms(fig.regional[1]);
    const std::vector<PolicyTerm> proposed(terms.begin(), terms.end());

    const ImpactReport report = analyze_policy_change(
        fig.topo, current, fig.regional[1], proposed, flows);
    std::printf("--- proposal: %s ---\n%s\n", proposal.label,
                report.summary(fig.topo).c_str());
  }

  // Render the internet with the current best policy route for one flow.
  const Oracle oracle(fig.topo, current);
  const FlowSpec flow{fig.campus[0], fig.campus[6]};
  const SynthesisResult best = oracle.best_route(flow);
  DotOptions options;
  if (best.found()) options.highlight_path = best.path;
  std::ofstream out("figure1.dot");
  out << to_dot(fig.topo, options);
  std::printf("wrote figure1.dot (render with: dot -Tsvg figure1.dot)\n");
  return 0;
}
