// Route availability under source-specific policy (paper §5.1-§5.4).
//
// A transit backbone restricts service to a subset of source ADs. The
// hop-by-hop architectures (ECMA's partial ordering cannot even express
// the policy; IDRP advertises constrained routes) are compared with the
// ORWG source-routing design against the ground-truth oracle: a legal
// route exists, but who finds it?
//
//   ./build/examples/policy_conflict
#include <cstdio>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/oracle.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"
#include "util/table.hpp"

int main() {
  using namespace idr;

  Figure1 fig = build_figure1();
  PolicySet policies = make_open_policies(fig.topo);

  // BB-West refuses everyone except campus0; BB-East carries all.
  policies.clear_terms(fig.backbone_west);
  PolicyTerm exclusive = open_transit_term(fig.backbone_west);
  exclusive.sources = AdSet::of({fig.campus[0]});
  policies.add_term(exclusive);

  // Flows: campus0 (privileged) and campus2 (unprivileged, but with the
  // Reg-1 -- Reg-2 lateral detour available) toward an east campus.
  const std::vector<FlowSpec> flows = {
      {fig.campus[0], fig.campus[6]},  // only legal via BB-West
      {fig.campus[2], fig.campus[4]},  // legal via the lateral detour
      {fig.campus[3], fig.campus[6]},  // must detour around BB-West
      {fig.campus[4], fig.campus[0]},  // NO legal route (Reg-0 sits behind
                                       // the restricted backbone)
  };

  const Oracle oracle(fig.topo, policies);
  std::printf("Ground truth:\n");
  for (const FlowSpec& flow : flows) {
    const auto best = oracle.best_route(flow);
    std::printf("  %s : %s\n", flow.describe(fig.topo).c_str(),
                best.found() ? "legal route exists" : "no legal route");
  }
  std::printf("\n");

  Table table(
      {"architecture", "design point", "found", "legal", "illegal",
       "missed"});
  for (auto& arch : make_policy_architectures()) {
    const ArchEvaluation eval =
        evaluate_architecture(*arch, fig.topo, policies, flows);
    table.add_row({arch->name(), eval.design_point,
                   Table::integer(static_cast<long long>(eval.found)),
                   Table::integer(static_cast<long long>(eval.legal)),
                   Table::integer(static_cast<long long>(eval.illegal)),
                   Table::integer(static_cast<long long>(eval.missed))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the link-state source-routing design (orwg) finds every\n"
      "legal route and refuses the impossible one; policy-blind and\n"
      "policy-in-topology designs forward the fourth flow straight\n"
      "through the backbone that forbids it (the 'illegal' column).\n");
  return 0;
}
