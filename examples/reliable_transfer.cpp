// Reliable file-style transfer over a lossy policy-routed internet.
//
// The paper leaves "sequencing and reliability ... to the transport
// layer" (§5.4.1); this example runs the repository's Go-Back-N
// transport over an ORWG Policy Route while the network drops 15% of
// packets, and shows the ARQ statistics.
//
//   ./build/examples/reliable_transfer
#include <cstdio>
#include <string>

#include "policy/generator.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"
#include "transport/gbn.hpp"

int main() {
  using namespace idr;

  Figure1 fig = build_figure1();
  PolicySet policies = make_open_policies(fig.topo);

  Engine engine;
  Network net(engine, fig.topo);
  std::vector<OrwgNode*> nodes;
  for (const Ad& ad : fig.topo.ads()) {
    auto node = std::make_unique<OrwgNode>(&policies);
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  net.start_all();
  engine.run();

  transport::TransportHost sender(*nodes[fig.campus[0].v], engine);
  transport::TransportHost receiver(*nodes[fig.campus[6].v], engine);

  std::size_t received = 0;
  bool in_order = true;
  std::size_t expected_chunk = 0;
  receiver.connect(fig.campus[0])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        const std::string text(msg.begin(), msg.end());
        if (text != "chunk:" + std::to_string(expected_chunk)) {
          in_order = false;
        }
        ++expected_chunk;
        ++received;
      });

  auto chunk_message = [](int i) {
    const std::string text = "chunk:" + std::to_string(i);
    return std::vector<std::uint8_t>(text.begin(), text.end());
  };

  // Establish the forward and reverse PRs cleanly with the first chunk,
  // then lose 15% of every packet -- data, acks, everything.
  transport::Connection& conn = sender.connect(fig.campus[6]);
  conn.send(chunk_message(0));
  engine.run();

  net.set_loss(0.15, /*seed=*/2026);
  constexpr int kChunks = 200;
  for (int i = 1; i < kChunks; ++i) conn.send(chunk_message(i));
  engine.run();
  net.set_loss(0.0, 0);

  std::printf("chunks sent:          %d\n", kChunks);
  std::printf("chunks delivered:     %zu (%s)\n", received,
              in_order ? "in order" : "OUT OF ORDER");
  std::printf("network losses:       %llu packets\n",
              static_cast<unsigned long long>(net.losses()));
  std::printf("GBN retransmissions:  %llu\n",
              static_cast<unsigned long long>(conn.retransmissions()));
  std::printf("duplicates discarded: %llu (receiver side)\n",
              static_cast<unsigned long long>(
                  receiver.connect(fig.campus[0]).duplicates_discarded()));
  std::printf("sim time:             %.1f s\n", engine.now() / 1000.0);
  return received == kChunks && in_order ? 0 : 1;
}
