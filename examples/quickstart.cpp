// Quickstart: build the paper's Figure-1 internet, run the ORWG
// (link-state source-routing) architecture on it, establish a Policy
// Route and send data over it.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "policy/generator.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

int main() {
  using namespace idr;

  // 1. The example internet of the paper's Figure 1: two backbones, four
  //    regionals, ten campuses, with lateral and bypass links.
  Figure1 fig = build_figure1();
  std::printf("Topology: %zu ADs, %zu links (%zu lateral, %zu bypass)\n",
              fig.topo.ad_count(), fig.topo.link_count(),
              fig.topo.count_links(LinkClass::kLateral),
              fig.topo.count_links(LinkClass::kBypass));

  // 2. A policy database: open transit at transit ADs, limited transit at
  //    hybrids, none at stubs.
  PolicySet policies = make_open_policies(fig.topo);
  std::printf("Policies: %zu policy terms advertised\n",
              policies.total_terms());

  // 3. One ORWG node per AD on the discrete-event simulator; the flooded
  //    policy LSAs converge.
  Engine engine;
  Network net(engine, fig.topo);
  std::vector<OrwgNode*> nodes;
  for (const Ad& ad : fig.topo.ads()) {
    auto node = std::make_unique<OrwgNode>(&policies);
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  net.start_all();
  engine.run();
  std::printf("Converged at t=%.1f ms after %llu control messages\n",
              net.last_delivery_time(),
              static_cast<unsigned long long>(net.total().msgs_sent));

  // 4. Send a flow from a west-coast campus to an east-coast campus. The
  //    first packet triggers Policy Route synthesis + setup; the rest ride
  //    the 8-byte handle.
  FlowSpec flow{fig.campus[0], fig.campus[6]};
  OrwgNode* src = nodes[flow.src.v];
  const auto route = src->policy_route(flow);
  if (!route) {
    std::printf("no policy route!\n");
    return 1;
  }
  std::printf("Policy route (%zu ADs):", route->size());
  for (AdId ad : *route) std::printf(" %s", fig.topo.ad(ad).name.c_str());
  std::printf("\n");

  src->send_flow(flow, 100);
  engine.run();
  const OrwgNode* dst = nodes[flow.dst.v];
  std::printf("Delivered %llu/100 packets; setup latency %.1f ms; "
              "mean delivery latency %.1f ms\n",
              static_cast<unsigned long long>(dst->delivered()),
              src->setup_latency_ms().mean(),
              dst->delivery_latency_ms().mean());
  return 0;
}
