// Convergence after an inter-AD link failure (paper §4.3, §5.1.1).
//
// The same failure -- the backbone-to-backbone link of Figure 1 -- is
// replayed under plain distance vector (RIP-like), ECMA's partial-order
// DV, IDRP's path vector, and link-state flooding, printing the messages
// and simulated time each needs to settle.
//
//   ./build/examples/convergence_story
#include <cstdio>

#include "core/adapters.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"
#include "util/table.hpp"

int main() {
  using namespace idr;

  Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);
  const LinkId cut =
      *fig.topo.find_link(fig.backbone_west, fig.backbone_east);

  Table table({"architecture", "initial msgs", "initial time(ms)",
               "reconv msgs", "reconv time(ms)", "reroutes via lateral"});

  auto run = [&](RoutingArchitecture& arch) {
    arch.build(fig.topo, policies);
    const ConvergenceStats initial = arch.initial_convergence();
    const ConvergenceStats recon = arch.perturb(cut, false);
    // Does traffic between the split backbones find the lateral detour?
    const RouteTrace trace =
        arch.trace(FlowSpec{fig.campus[0], fig.campus[6]});
    bool lateral = false;
    if (trace.path) {
      for (std::size_t i = 0; i + 1 < trace.path->size(); ++i) {
        const AdId a = (*trace.path)[i];
        const AdId b = (*trace.path)[i + 1];
        if ((a == fig.regional[1] && b == fig.regional[2]) ||
            (a == fig.regional[2] && b == fig.regional[1])) {
          lateral = true;
        }
      }
    }
    table.add_row(
        {arch.name(),
         Table::integer(static_cast<long long>(initial.messages)),
         Table::num(initial.time_ms, 4),
         Table::integer(static_cast<long long>(recon.messages)),
         Table::num(recon.time_ms, 4), lateral ? "yes" : "no"});
  };

  DvArchitecture plain_dv(DvConfig{.split_horizon = false});
  DvArchitecture sh_dv(DvConfig{.split_horizon = true});
  EcmaArchitecture ecma;
  IdrpArchitecture idrp;
  LshhArchitecture lshh;
  OrwgArchitecture orwg;
  run(plain_dv);
  run(sh_dv);
  run(ecma);
  run(idrp);
  run(lshh);
  run(orwg);

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: plain DV pays the count-to-infinity message tax; the\n"
      "partial ordering (ecma) suppresses it; link-state floods settle\n"
      "fastest. The policy-term architectures reroute across the\n"
      "Reg-1/Reg-2 lateral once the inter-backbone link dies; ecma\n"
      "cannot (the detour is down-then-up, which its up/down rule\n"
      "forbids) -- loop suppression bought with reachability.\n");
  return 0;
}
