// An NSFNET-style acceptable-use policy (paper §2.3): the research
// backbone only carries research-class traffic, and a commercial carrier
// charges more. Sources pick Policy Routes per user class; the policy
// gateways enforce the AUP on setup.
//
//   ./build/examples/transit_policy
#include <cstdio>

#include "policy/generator.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

int main() {
  using namespace idr;

  Figure1 fig = build_figure1();
  PolicySet policies = make_open_policies(fig.topo);

  // BB-West is the research backbone: research traffic only (the AUP),
  // cheap. BB-East is a commercial carrier: anything, cost 5.
  apply_aup(policies, fig.backbone_west);
  policies.clear_terms(fig.backbone_east);
  policies.add_term(open_transit_term(fig.backbone_east, 0, /*cost=*/5));

  Engine engine;
  Network net(engine, fig.topo);
  std::vector<OrwgNode*> nodes;
  for (const Ad& ad : fig.topo.ads()) {
    auto node = std::make_unique<OrwgNode>(&policies);
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  net.start_all();
  engine.run();

  auto show = [&](AdId src_ad, UserClass uci) {
    FlowSpec flow{src_ad, fig.campus[6], Qos::kDefault, uci, 12};
    OrwgNode* src = nodes[flow.src.v];
    const auto route = src->policy_route(flow);
    std::printf("%-9s / %-11s: ", fig.topo.ad(src_ad).name.c_str(),
                to_string(uci));
    if (!route) {
      std::printf("no legal policy route\n");
      return;
    }
    for (std::size_t i = 0; i < route->size(); ++i) {
      std::printf("%s%s", i ? " > " : "",
                  fig.topo.ad((*route)[i]).name.c_str());
    }
    src->send_flow(flow, 20);
    engine.run();
    std::printf("\n");
  };

  // Campus-0's only provider chain runs through the research backbone:
  // its research traffic flows, its commercial traffic is AUP-stranded
  // (the 1990s NSFNET situation the paper's UCI policies model).
  show(fig.campus[0], UserClass::kResearch);
  show(fig.campus[0], UserClass::kCommercial);
  // Campus-2's regional peers laterally with Reg-2, so its commercial
  // traffic can route around the AUP via the commercial carrier.
  show(fig.campus[2], UserClass::kResearch);
  show(fig.campus[2], UserClass::kCommercial);

  std::printf("\nDelivered at %s: %llu packets\n",
              fig.topo.ad(fig.campus[6]).name.c_str(),
              static_cast<unsigned long long>(
                  nodes[fig.campus[6].v]->delivered()));

  std::printf("\nGateway stats at %s: %llu setups accepted, %llu rejected\n",
              fig.topo.ad(fig.backbone_west).name.c_str(),
              static_cast<unsigned long long>(
                  nodes[fig.backbone_west.v]->gateway().setups_accepted()),
              static_cast<unsigned long long>(
                  nodes[fig.backbone_west.v]->gateway().setups_rejected()));

  // Charging & accounting (§2.3): each transit AD meters validated
  // usage per source against the admitting Policy Term's price.
  for (AdId carrier : {fig.backbone_west, fig.backbone_east}) {
    PolicyGateway& gw = nodes[carrier.v]->gateway();
    std::printf("\n%s invoices (total revenue %llu):\n",
                fig.topo.ad(carrier).name.c_str(),
                static_cast<unsigned long long>(gw.total_revenue()));
    for (const PolicyGateway::Invoice& invoice : gw.invoices()) {
      std::printf("  %-10s %llu packets, %llu bytes -> charge %llu\n",
                  fig.topo.ad(invoice.source).name.c_str(),
                  static_cast<unsigned long long>(invoice.packets),
                  static_cast<unsigned long long>(invoice.bytes),
                  static_cast<unsigned long long>(invoice.amount));
    }
  }
  return 0;
}
